package core_test

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"hyperprov/internal/core"
)

func qv(name string) *core.Expr { return core.QueryVar(name) }
func tv(name string) *core.Expr { return core.TupleVar(name) }

// kindOf resolves parsed variable names: names starting with "p" or "q"
// followed by nothing or digits are treated as query annotations in the
// tests, mirroring the paper's naming (p, p', p1 are query/transaction
// annotations, x1, t1 tuple annotations).
func kindOf(name string) core.AnnotKind {
	if strings.HasPrefix(name, "q") || name == "p" || name == "p'" {
		return core.KindQuery
	}
	return core.KindTuple
}

func TestZeroSingleton(t *testing.T) {
	if core.Zero() != core.Zero() {
		t.Fatal("Zero must return the canonical node")
	}
	if !core.Zero().IsZero() {
		t.Fatal("Zero().IsZero() = false")
	}
	if core.Zero().Size() != 1 {
		t.Fatalf("Zero size = %d, want 1", core.Zero().Size())
	}
}

func TestExample32String(t *testing.T) {
	// Example 3.2: annotation of Products("Kids mnt bike", "Sport", $120)
	// after the first query of T1 is p1 +M (p3 ·M p), and the final
	// annotation of the Bicycles tuple is 0 +M ((p1 +M (p3 ·M p)) ·M p).
	p := core.QueryAnnot("p")
	e1 := core.PlusM(tv("p1"), core.DotM(tv("p3"), core.Var(p)))
	if got, want := e1.String(), "p1 +M (p3 *M p)"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	e2 := core.PlusM(core.Zero(), core.DotM(e1, core.Var(p)))
	if got, want := e2.String(), "0 +M ((p1 +M (p3 *M p)) *M p)"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if e2.Size() != 9 {
		t.Errorf("Size = %d, want 9", e2.Size())
	}
}

func TestSumFlattening(t *testing.T) {
	s := core.Sum(tv("a"), core.Sum(tv("b"), tv("c")), tv("d"))
	if s.Op() != core.OpSum || s.NumChildren() != 4 {
		t.Fatalf("nested sums must flatten: got %v with %d children", s.Op(), s.NumChildren())
	}
	if core.Sum().Op() != core.OpZero {
		t.Error("empty sum must be 0")
	}
	if one := core.Sum(tv("a")); one.Op() != core.OpVar {
		t.Error("singleton sum must be its element")
	}
}

func TestEqualAndHash(t *testing.T) {
	a := core.PlusM(tv("x"), core.DotM(core.Sum(tv("y"), tv("z")), qv("p")))
	b := core.PlusM(tv("x"), core.DotM(core.Sum(tv("y"), tv("z")), qv("p")))
	if !a.Equal(b) || a.Hash() != b.Hash() {
		t.Error("structurally equal expressions must be Equal with equal hashes")
	}
	c := core.PlusM(tv("x"), core.DotM(core.Sum(tv("z"), tv("y")), qv("p")))
	if a.Equal(c) {
		t.Error("sums with different order are not structurally equal")
	}
	// Tuple and query annotations with the same name are distinct.
	if tv("p").Equal(qv("p")) {
		t.Error("tuple annotation p must differ from query annotation p")
	}
}

func TestDeepCopy(t *testing.T) {
	e := core.PlusM(tv("x"), core.DotM(core.Sum(tv("y"), tv("z")), qv("p")))
	c := e.DeepCopy()
	if !e.Equal(c) {
		t.Fatal("DeepCopy must preserve structure")
	}
	if e == c || e.Child(1) == c.Child(1) {
		t.Fatal("DeepCopy must not share non-leaf nodes")
	}
	if e.Size() != c.Size() || e.Hash() != c.Hash() {
		t.Fatal("DeepCopy must preserve size and hash")
	}
}

func TestDAGSizeVersusTreeSize(t *testing.T) {
	// A chain that doubles tree size at every step keeps DAG size linear.
	e := tv("x")
	for i := 0; i < 10; i++ {
		e = core.PlusM(e, core.DotM(e, qv("p")))
	}
	if e.Size() < 1000 {
		t.Fatalf("tree size = %d, want exponential growth", e.Size())
	}
	if ds := e.DAGSize(); ds > 40 {
		t.Fatalf("DAG size = %d, want linear growth", ds)
	}
}

func TestAnnots(t *testing.T) {
	e := core.PlusM(core.Minus(tv("x"), qv("p")), core.DotM(core.Sum(tv("y"), tv("x")), qv("p")))
	got := e.Annots(nil)
	want := []core.Annot{core.TupleAnnot("x"), core.TupleAnnot("y"), core.QueryAnnot("p")}
	if len(got) != len(want) {
		t.Fatalf("Annots = %v, want %v", got, want)
	}
	for _, a := range want {
		if _, ok := got[a]; !ok {
			t.Errorf("missing annotation %v", a)
		}
	}
}

func TestDepth(t *testing.T) {
	if d := tv("x").Depth(); d != 1 {
		t.Errorf("leaf depth = %d, want 1", d)
	}
	e := core.PlusI(core.Minus(tv("x"), qv("p")), qv("q"))
	if d := e.Depth(); d != 3 {
		t.Errorf("depth = %d, want 3", d)
	}
}

func TestParseRoundTripExamples(t *testing.T) {
	cases := []string{
		"0",
		"x1",
		"p1 +M (p3 *M p)",
		"(p1 +M (p3 *M p)) - p",
		"0 +M (((p1 +M (p3 *M p)) - p) *M p')",
		"(p1 + p3) *M p",
		"((a - p) +M ((b0 + b1 + b2) *M p)) +I q1",
		"x1 + x2 + x3",
	}
	for _, s := range cases {
		e, err := core.ParseExpr(s, kindOf)
		if err != nil {
			t.Fatalf("ParseExpr(%q): %v", s, err)
		}
		if got := e.String(); got != s {
			t.Errorf("round trip of %q = %q", s, got)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"", "(a", "a +M", "a + b - c", "a )", "$x"} {
		if _, err := core.ParseExpr(s, kindOf); err == nil {
			t.Errorf("ParseExpr(%q) succeeded, want error", s)
		}
	}
}

// randExpr builds a random expression over a small pool of annotations.
func randExpr(r *rand.Rand, depth int) *core.Expr {
	if depth <= 0 || r.Intn(4) == 0 {
		switch r.Intn(4) {
		case 0:
			return core.Zero()
		case 1:
			return qv([]string{"p", "q1", "q2"}[r.Intn(3)])
		default:
			return tv([]string{"x1", "x2", "x3", "x4"}[r.Intn(4)])
		}
	}
	switch r.Intn(5) {
	case 0:
		return core.PlusI(randExpr(r, depth-1), randExpr(r, depth-1))
	case 1:
		return core.Minus(randExpr(r, depth-1), randExpr(r, depth-1))
	case 2:
		return core.PlusM(randExpr(r, depth-1), randExpr(r, depth-1))
	case 3:
		return core.DotM(randExpr(r, depth-1), randExpr(r, depth-1))
	default:
		n := 2 + r.Intn(3)
		kids := make([]*core.Expr, n)
		for i := range kids {
			kids[i] = randExpr(r, depth-1)
		}
		return core.Sum(kids...)
	}
}

func TestParseRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func() bool {
		e := randExpr(r, 5)
		back, err := core.ParseExpr(e.String(), kindOf)
		if err != nil {
			t.Logf("parse error for %q: %v", e.String(), err)
			return false
		}
		return back.Equal(e)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteDOT(t *testing.T) {
	e := core.PlusM(tv("a"), core.DotM(core.Sum(tv("b"), tv("c")), qv("p")))
	var b strings.Builder
	if err := core.WriteDOT(&b, "prov", e); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, frag := range []string{"digraph", `label="+M"`, `label="*M"`, `label="a"`, `label="p"`, "n0 -> n1"} {
		if !strings.Contains(out, frag) {
			t.Errorf("DOT output missing %q:\n%s", frag, out)
		}
	}
}
