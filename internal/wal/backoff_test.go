package wal

import (
	"testing"
	"time"
)

// seq returns the draws in order, cycling — the injected jitter source.
func seq(draws ...float64) func() float64 {
	i := 0
	return func() float64 {
		d := draws[i%len(draws)]
		i++
		return d
	}
}

// TestFollowerRedialSchedule unit-tests the redial schedule with an
// injected jitter source: full-jitter draws stay inside the doubling
// ceilings, cap at the configured maximum, and restart after a
// progress reset — so a fleet of replicas restarting together spreads
// its redials instead of hammering the leader in lockstep.
func TestFollowerRedialSchedule(t *testing.T) {
	f := &Follower{o: options{
		redialBase: 10 * time.Millisecond,
		redialCap:  80 * time.Millisecond,
		redialRand: seq(0.999999),
	}}
	bo := f.redialSchedule()
	ceilings := []time.Duration{10, 20, 40, 80, 80, 80} // ms, doubling then capped
	for i, c := range ceilings {
		got := bo.Next()
		ceil := c * time.Millisecond
		if got > ceil || got < ceil-time.Millisecond {
			t.Fatalf("attempt %d: delay %v, want ≈%v", i, got, ceil)
		}
	}
	// Progress resets the schedule to the first ceiling.
	bo.Reset()
	if got := bo.Next(); got > 10*time.Millisecond {
		t.Fatalf("post-reset delay %v, want ≤ 10ms", got)
	}
}

// TestFollowerRedialJitterDecorrelates: two followers with different
// draws never sleep the same duration at the same attempt.
func TestFollowerRedialJitterDecorrelates(t *testing.T) {
	mk := func(r func() float64) *Follower {
		return &Follower{o: options{redialBase: 50 * time.Millisecond, redialCap: 2 * time.Second, redialRand: r}}
	}
	a := mk(seq(0.11)).redialSchedule()
	b := mk(seq(0.83)).redialSchedule()
	for i := 0; i < 6; i++ {
		if da, db := a.Next(), b.Next(); da == db {
			t.Fatalf("attempt %d: both replicas slept %v — lockstep redial", i, da)
		}
	}
}

// TestWithRedialBackoffPlumbs: the exported options reach the redial
// schedule and the breaker.
func TestWithRedialBackoffPlumbs(t *testing.T) {
	var o options
	WithRedialBackoff(7*time.Millisecond, 70*time.Millisecond)(&o)
	WithReconnectBudget(3, time.Second)(&o)
	WithStreamStallTimeout(250 * time.Millisecond)(&o)
	if o.redialBase != 7*time.Millisecond || o.redialCap != 70*time.Millisecond {
		t.Fatalf("redial options did not plumb: %+v", o)
	}
	if o.breakerBudget != 3 || o.breakerCooldown != time.Second {
		t.Fatalf("breaker options did not plumb: %+v", o)
	}
	if o.stallTimeout != 250*time.Millisecond {
		t.Fatalf("stall option did not plumb: %+v", o)
	}
	f := &Follower{o: o}
	bo := f.redialSchedule()
	if d := bo.Next(); d > 7*time.Millisecond {
		t.Fatalf("first delay %v exceeds the configured 7ms base ceiling", d)
	}
}
