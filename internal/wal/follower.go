package wal

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"hyperprov/internal/admission"
	"hyperprov/internal/core"
	"hyperprov/internal/db"
	"hyperprov/internal/engine"
	"hyperprov/internal/provstore"
)

// ErrFollower reports a write attempted on a replication follower.
// Followers serve the full read surface; writes go to the leader.
var ErrFollower = errors.New("wal: store is a replication follower (read-only; write to the leader)")

// ErrStreamStalled reports a replication session that went silent past
// the stall timeout: no records and no heartbeats, the signature of a
// network partition that blackholes the connection without closing it.
// Followers treat it like a dropped connection and redial.
var ErrStreamStalled = errors.New("wal: replication stream stalled (no frames within the stall timeout)")

// Follower is a read replica: it tails a leader's replication stream,
// persists every record into a local WAL directory laid out exactly
// like a leader's (so a follower can be promoted by reopening the
// directory with Open), and applies records through the same replay
// path recovery uses — byte-identical state at every record boundary,
// so snapshots and the whole read surface agree with the leader. MVCC
// epochs pin the same transaction boundaries, numbered from the
// follower's bootstrap point (epoch numbering is per process life,
// exactly as with Store recovery).
//
// It implements engine.DB: the read surface delegates to the replayed
// engine at its committed horizon; every write returns ErrFollower.
//
// Internally the follower is a single-goroutine engine loop fed by a
// channel message service: a reader goroutine per connection decodes
// CRC-checked frames into a channel, and the apply loop — the only
// goroutine that touches the store — consumes them. Disconnects,
// corrupt frames and leader restarts all collapse to the same path:
// drop the connection and redial from the durably applied LSN.
type Follower struct {
	dir string
	src StreamSource
	o   options

	core atomic.Pointer[Store] // nil until bootstrapped

	cancel  context.CancelFunc
	wg      sync.WaitGroup
	bootCh  chan struct{} // closed once an engine exists
	closeMu sync.Mutex
	closed  bool

	// ready is monotonic per process life: set once the applied LSN
	// reaches the target announced by the first successful handshake.
	ready       atomic.Bool
	targetMu    sync.Mutex
	haveTarget  bool
	syncTarget  uint64
	leaderLSN   atomic.Uint64
	leaderHrz   atomic.Uint64
	reconnects  atomic.Uint64
	resyncs     atomic.Uint64
	records     atomic.Uint64
	stalls      atomic.Uint64
	lastErr     atomic.Value // string
	releaseOnly func()       // dir lock before a core exists

	// breaker guards the redial loop: after WithReconnectBudget
	// consecutive no-progress sessions it opens for the cooldown. Its
	// state is exported in ReplicaStats.
	breaker admission.Breaker
}

var _ engine.DB = (*Follower)(nil)

// FollowerStats is the replication lag summary a follower exposes.
type FollowerStats struct {
	Ready          bool                   `json:"ready"`
	AppliedLSN     uint64                 `json:"applied_lsn"`
	LeaderLSN      uint64                 `json:"leader_lsn"`
	LagRecords     uint64                 `json:"lag_records"`
	Epoch          uint64                 `json:"epoch"`
	LeaderEpoch    uint64                 `json:"leader_epoch"`
	LagEpochs      uint64                 `json:"lag_epochs"`
	SyncTarget     uint64                 `json:"sync_target"`
	Reconnects     uint64                 `json:"reconnects"`
	Resyncs        uint64                 `json:"resyncs"`
	RecordsApplied uint64                 `json:"records_applied"`
	Stalls         uint64                 `json:"stalls"`
	Breaker        admission.BreakerStats `json:"breaker"`
	LastError      string                 `json:"last_error,omitempty"`
}

// OpenFollower opens dir as a replica of the leader behind src and
// starts the apply loop. If dir already holds replicated state it is
// recovered first (exactly like a leader restart) and streaming resumes
// from the durably applied LSN — history is never re-streamed unless
// the leader has pruned it. A fresh directory blocks until the first
// handshake succeeds so the returned Follower always has an engine to
// read from; ctx bounds only that initial wait. Close stops the loop.
//
// Options are the local-durability subset: sync policy, segment size,
// checkpoint cadence, engine options, FS. Mode and schema come from the
// leader.
func OpenFollower(ctx context.Context, dir string, src StreamSource, opts ...Option) (*Follower, error) {
	o := options{
		mode:         engine.ModeNormalForm,
		sync:         SyncAlways,
		interval:     50 * time.Millisecond,
		segSize:      16 << 20,
		heartbeat:    500 * time.Millisecond,
		fs:           OSFS{},
		redialBase:   admission.DefaultBackoffBase,
		redialCap:    admission.DefaultBackoffCap,
		stallTimeout: 10 * time.Second,
	}
	for _, opt := range opts {
		opt(&o)
	}
	if o.segSize < 1<<10 {
		o.segSize = 1 << 10
	}
	if err := o.fs.MkdirAll(dir); err != nil {
		return nil, err
	}
	release, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	f := &Follower{dir: dir, src: src, o: o, bootCh: make(chan struct{})}
	f.breaker = admission.Breaker{Budget: o.breakerBudget, Cooldown: o.breakerCooldown}
	meta, err := readMeta(o.fs, dir)
	switch {
	case errors.Is(err, errNoMeta):
		// Fresh directory: the first handshake supplies the identity.
		f.releaseOnly = release
	case err != nil:
		release()
		return nil, err
	default:
		s := &Store{dir: dir, fs: o.fs, release: release, opts: o}
		if err := s.recover(meta); err != nil {
			release()
			return nil, err
		}
		s.startSyncLoop()
		f.core.Store(s)
		close(f.bootCh)
	}
	loopCtx, cancel := context.WithCancel(context.Background())
	f.cancel = cancel
	f.wg.Add(1)
	go f.run(loopCtx)
	select {
	case <-f.bootCh:
		return f, nil
	case <-ctx.Done():
		f.Close()
		return nil, fmt.Errorf("wal: follower bootstrap: %w", ctx.Err())
	}
}

// redialSchedule builds the follower's full-jitter backoff from its
// options; factored out so the schedule is unit-testable with an
// injected jitter source.
func (f *Follower) redialSchedule() admission.Backoff {
	return admission.Backoff{Base: f.o.redialBase, Cap: f.o.redialCap, Rand: f.o.redialRand}
}

// run redials the leader until the follower closes. Delays follow a
// full-jitter exponential schedule (so restarting replica fleets don't
// redial in lockstep) that resets whenever a session makes progress,
// and the reconnect-budget circuit breaker — when armed — turns a run
// of hopeless sessions into a quiet cooldown instead of a connection
// grind.
func (f *Follower) run(ctx context.Context) {
	defer f.wg.Done()
	backoff := f.redialSchedule()
	for ctx.Err() == nil {
		if wait, ok := f.breaker.Allow(); !ok {
			if !sleepCtx(ctx, wait) {
				return
			}
			continue
		}
		progressed, err := f.streamOnce(ctx)
		if ctx.Err() != nil {
			return
		}
		if err != nil && !errors.Is(err, io.EOF) {
			f.lastErr.Store(err.Error())
		}
		f.reconnects.Add(1)
		if progressed {
			backoff.Reset()
			f.breaker.Success()
		} else {
			f.breaker.Failure()
		}
		if !sleepCtx(ctx, backoff.Next()) {
			return
		}
	}
}

// sleepCtx sleeps d or until ctx cancels; false means canceled.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-timer.C:
		return true
	}
}

// followerMsg is one decoded frame (or the reader's terminal error)
// delivered to the apply loop.
type followerMsg struct {
	payload []byte
	err     error
}

// streamOnce runs one replication session: dial, handshake, apply until
// the connection drops. It reports whether any message was applied
// (for backoff reset).
func (f *Follower) streamOnce(ctx context.Context) (progressed bool, err error) {
	from := uint64(0)
	if s := f.core.Load(); s != nil {
		from = s.LSN()
	}
	rc, err := f.src(ctx, from)
	if err != nil {
		return false, err
	}
	defer rc.Close()

	// Message service: the reader decodes frames into msgs; the apply
	// loop below is the single goroutine that touches the store. done
	// unblocks the reader if the apply loop bails first.
	msgs := make(chan followerMsg, 64)
	done := make(chan struct{})
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		fr := newFrameReader(rc)
		for {
			p, rerr := fr.readMsg()
			m := followerMsg{payload: p, err: rerr}
			select {
			case msgs <- m:
			case <-done:
				return
			}
			if rerr != nil {
				return
			}
		}
	}()
	defer rwg.Wait()
	defer close(done)

	// The stall timer bounds the silence between frames: heartbeats
	// flow every heartbeat interval even on an idle leader, so a
	// silent link past the timeout is partitioned, not just quiet. A
	// nil timer (timeout disabled) leaves stallC nil, which never
	// fires. On stall the transport is closed before returning so the
	// reader goroutine unblocks and the session tears down cleanly.
	var stall *time.Timer
	if f.o.stallTimeout > 0 {
		stall = time.NewTimer(f.o.stallTimeout)
		defer stall.Stop()
	}
	next := func() ([]byte, error) {
		var stallC <-chan time.Time
		if stall != nil {
			if !stall.Stop() {
				select {
				case <-stall.C:
				default:
				}
			}
			stall.Reset(f.o.stallTimeout)
			stallC = stall.C
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case m := <-msgs:
			return m.payload, m.err
		case <-stallC:
			f.stalls.Add(1)
			rc.Close()
			return nil, ErrStreamStalled
		}
	}

	// Handshake: hello first, always.
	p, err := next()
	if err != nil {
		return false, err
	}
	if len(p) == 0 || p[0] != msgHello {
		return false, fmt.Errorf("%w: expected hello, got message type %d", ErrStreamCorrupt, msgType(p))
	}
	hello, err := decodeHello(&recDecoder{r: bytes.NewReader(p[1:])})
	if err != nil {
		return false, fmt.Errorf("%w: bad hello: %v", ErrStreamCorrupt, err)
	}
	var ckpt []byte
	if hello.resync {
		if ckpt, err = f.collectCheckpoint(next, hello.snapLSN); err != nil {
			return false, err
		}
	}
	if err := f.installHello(hello, ckpt); err != nil {
		return false, err
	}
	progressed = hello.resync // a shipped checkpoint is progress
	f.observeLeader(hello.target, hello.horizon)
	f.setFirstTarget(hello.target)
	f.checkReady()

	s := f.core.Load()
	for {
		p, err := next()
		if err != nil {
			return progressed, err
		}
		switch msgType(p) {
		case msgRecord:
			d := &recDecoder{r: bytes.NewReader(p[1:])}
			lsn, err := d.uvarint()
			if err != nil {
				return progressed, fmt.Errorf("%w: bad record frame: %v", ErrStreamCorrupt, err)
			}
			payload := p[len(p)-d.r.Len():]
			if want := s.LSN(); lsn != want {
				return progressed, fmt.Errorf("%w: record LSN %d, expected %d", ErrStreamCorrupt, lsn, want)
			}
			if err := s.applyReplicated(payload); err != nil {
				return progressed, err
			}
			progressed = true
			f.records.Add(1)
			f.observeLeader(lsn+1, 0)
			f.checkReady()
		case msgHeartbeat:
			d := &recDecoder{r: bytes.NewReader(p[1:])}
			lsn, err := d.uvarint()
			if err != nil {
				return progressed, fmt.Errorf("%w: bad heartbeat: %v", ErrStreamCorrupt, err)
			}
			horizon, err := d.uvarint()
			if err != nil {
				return progressed, fmt.Errorf("%w: bad heartbeat: %v", ErrStreamCorrupt, err)
			}
			f.observeLeader(lsn, horizon)
			f.checkReady()
		default:
			return progressed, fmt.Errorf("%w: unexpected message type %d mid-stream", ErrStreamCorrupt, msgType(p))
		}
	}
}

func msgType(p []byte) byte {
	if len(p) == 0 {
		return 0
	}
	return p[0]
}

// collectCheckpoint drains ckptChunk frames until ckptDone, verifying
// the done marker names the LSN the hello promised.
func (f *Follower) collectCheckpoint(next func() ([]byte, error), snapLSN uint64) ([]byte, error) {
	var buf bytes.Buffer
	for {
		p, err := next()
		if err != nil {
			return nil, err
		}
		switch msgType(p) {
		case msgCkptChunk:
			buf.Write(p[1:])
		case msgCkptDone:
			d := &recDecoder{r: bytes.NewReader(p[1:])}
			lsn, err := d.uvarint()
			if err != nil || lsn != snapLSN {
				return nil, fmt.Errorf("%w: checkpoint done marker mismatch", ErrStreamCorrupt)
			}
			return buf.Bytes(), nil
		default:
			return nil, fmt.Errorf("%w: message type %d inside checkpoint bootstrap", ErrStreamCorrupt, msgType(p))
		}
	}
}

// installHello establishes or rebuilds the local core per the
// handshake: bootstrap an empty store for an incremental stream from
// zero, install the shipped checkpoint for a resync (discarding any
// divergent or superseded local state), or nothing for a plain resume.
func (f *Follower) installHello(hello helloMsg, ckpt []byte) error {
	s := f.core.Load()
	switch {
	case hello.resync:
		if s == nil {
			ns, err := newFollowerCore(f.dir, f.releaseOnly, f.o)
			if err != nil {
				return err
			}
			s = ns
		}
		// On error the Store shell is discarded; the directory lock stays
		// with f.releaseOnly (when no core exists yet) so the retry can
		// build a fresh shell.
		if err := s.resyncFromCheckpoint(hello.mode, hello.schema, hello.snapLSN, ckpt); err != nil {
			return err
		}
		f.resyncs.Add(1)
	case s == nil:
		// Incremental from zero: the leader bootstrapped empty, so an
		// empty local engine plus the record stream reproduces it.
		ns, err := newFollowerCore(f.dir, f.releaseOnly, f.o)
		if err != nil {
			return err
		}
		if err := ns.bootstrapEmptyFollower(hello.mode, hello.schema); err != nil {
			return err
		}
		s = ns
	default:
		return nil // plain incremental resume
	}
	if f.core.Load() == nil {
		s.startSyncLoop()
		f.core.Store(s)
		f.releaseOnly = nil
		close(f.bootCh)
	}
	return nil
}

func (f *Follower) observeLeader(lsn, horizon uint64) {
	for {
		cur := f.leaderLSN.Load()
		if lsn <= cur || f.leaderLSN.CompareAndSwap(cur, lsn) {
			break
		}
	}
	for horizon != 0 {
		cur := f.leaderHrz.Load()
		if horizon <= cur || f.leaderHrz.CompareAndSwap(cur, horizon) {
			break
		}
	}
}

// setFirstTarget pins the initial-sync goal: the leader LSN announced
// by the first successful handshake of this process life.
func (f *Follower) setFirstTarget(target uint64) {
	f.targetMu.Lock()
	if !f.haveTarget {
		f.haveTarget = true
		f.syncTarget = target
	}
	f.targetMu.Unlock()
}

func (f *Follower) checkReady() {
	if f.ready.Load() {
		return
	}
	f.targetMu.Lock()
	have, target := f.haveTarget, f.syncTarget
	f.targetMu.Unlock()
	s := f.core.Load()
	if have && s != nil && s.LSN() >= target {
		f.ready.Store(true)
	}
}

// Ready reports whether the follower finished its initial sync: the
// engine exists and the applied LSN reached the leader LSN announced
// by the first handshake. Monotonic for the life of the process.
func (f *Follower) Ready() bool { return f.ready.Load() }

// ReplicaStats summarizes replication lag and session health.
func (f *Follower) ReplicaStats() FollowerStats {
	st := FollowerStats{
		Ready:          f.ready.Load(),
		LeaderLSN:      f.leaderLSN.Load(),
		Reconnects:     f.reconnects.Load(),
		Resyncs:        f.resyncs.Load(),
		RecordsApplied: f.records.Load(),
		Stalls:         f.stalls.Load(),
		Breaker:        f.breaker.Snapshot(),
	}
	f.targetMu.Lock()
	st.SyncTarget = f.syncTarget
	f.targetMu.Unlock()
	if s := f.core.Load(); s != nil {
		st.AppliedLSN = s.LSN()
		st.Epoch = engine.SeqEpoch(s.Horizon())
	}
	if st.LeaderLSN > st.AppliedLSN {
		st.LagRecords = st.LeaderLSN - st.AppliedLSN
	}
	st.LeaderEpoch = engine.SeqEpoch(f.leaderHrz.Load())
	// Epoch numbering is per process life (recovery and resync replay
	// history into the recovery horizon), so Epoch and LeaderEpoch are
	// separate domains offset by the bootstrap point — they cannot be
	// subtracted. Unapplied records are the epoch lag: every logged
	// record allocates exactly one write epoch, except index DDL.
	st.LagEpochs = st.LagRecords
	if e, ok := f.lastErr.Load().(string); ok {
		st.LastError = e
	}
	return st
}

// WALStats exposes the local durability counters (the follower's own
// log and checkpoints).
func (f *Follower) WALStats() StoreStats {
	if s := f.core.Load(); s != nil {
		return s.Stats()
	}
	return StoreStats{Dir: f.dir}
}

// Dir returns the local data directory.
func (f *Follower) Dir() string { return f.dir }

// Close stops the apply loop and closes the local store.
func (f *Follower) Close() error {
	f.closeMu.Lock()
	defer f.closeMu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	f.cancel()
	f.wg.Wait()
	if s := f.core.Load(); s != nil {
		return s.Close()
	}
	if f.releaseOnly != nil {
		f.releaseOnly()
	}
	return nil
}

// Crash stops the apply loop and abandons the local store without
// flushing or syncing, simulating follower process death mid-apply.
// Test hook, mirroring Store.Crash.
func (f *Follower) Crash() {
	f.closeMu.Lock()
	defer f.closeMu.Unlock()
	if f.closed {
		return
	}
	f.closed = true
	f.cancel()
	f.wg.Wait()
	if s := f.core.Load(); s != nil {
		s.Crash()
		return
	}
	if f.releaseOnly != nil {
		f.releaseOnly()
	}
}

// db returns the core store; OpenFollower only returns once it exists,
// so read delegation never sees nil.
func (f *Follower) db() *Store { return f.core.Load() }

// --- engine.DB: reads delegate, writes refuse ---------------------------

// Mode implements engine.DB.
func (f *Follower) Mode() engine.Mode { return f.db().Mode() }

// Schema implements engine.DB.
func (f *Follower) Schema() *db.Schema { return f.db().Schema() }

// Relations implements engine.DB.
func (f *Follower) Relations() []string { return f.db().Relations() }

// Annotation implements engine.DB.
func (f *Follower) Annotation(rel string, t db.Tuple) *core.Expr { return f.db().Annotation(rel, t) }

// NF implements engine.DB.
func (f *Follower) NF(rel string, t db.Tuple) *core.NF { return f.db().NF(rel, t) }

// EachRow implements engine.DB.
func (f *Follower) EachRow(rel string, fn func(t db.Tuple, ann *core.Expr)) { f.db().EachRow(rel, fn) }

// Rows implements engine.DB.
func (f *Follower) Rows(fn func(rel string, t db.Tuple, ann *core.Expr)) { f.db().Rows(fn) }

// Select implements engine.DB.
func (f *Follower) Select(rel string, sel db.Pattern) ([]db.Tuple, error) {
	return f.db().Select(rel, sel)
}

// NumRows implements engine.DB.
func (f *Follower) NumRows() int { return f.db().NumRows() }

// SupportSize implements engine.DB.
func (f *Follower) SupportSize() int { return f.db().SupportSize() }

// ProvSize implements engine.DB.
func (f *Follower) ProvSize() int64 { return f.db().ProvSize() }

// ProvDAGSize implements engine.DB.
func (f *Follower) ProvDAGSize() int64 { return f.db().ProvDAGSize() }

// At implements engine.DB.
func (f *Follower) At(seq uint64) engine.View { return f.db().At(seq) }

// Horizon implements engine.DB.
func (f *Follower) Horizon() uint64 { return f.db().Horizon() }

// WaitHorizon implements engine.DB.
func (f *Follower) WaitHorizon(ctx context.Context, seq uint64) error {
	return f.db().WaitHorizon(ctx, seq)
}

// MVCCStats implements engine.DB.
func (f *Follower) MVCCStats() engine.MVCCStats { return f.db().MVCCStats() }

// IndexStats implements engine.DB.
func (f *Follower) IndexStats() []engine.IndexInfo { return f.db().IndexStats() }

// PlannerStats implements engine.DB.
func (f *Follower) PlannerStats() engine.PlannerStats { return f.db().PlannerStats() }

// Underlying exposes the replayed engine for diagnostics, mirroring
// Store.Underlying.
func (f *Follower) Underlying() engine.DB { return f.db().Underlying() }

// ApplyTransaction implements engine.DB; followers refuse writes.
func (f *Follower) ApplyTransaction(*db.Transaction) error { return ErrFollower }

// ApplyAll implements engine.DB; followers refuse writes.
func (f *Follower) ApplyAll(context.Context, []db.Transaction) error { return ErrFollower }

// ApplyBatch implements engine.DB; followers refuse writes.
func (f *Follower) ApplyBatch(context.Context, []db.Transaction) (int, error) {
	return 0, ErrFollower
}

// RestoreRow implements engine.DB; followers refuse writes.
func (f *Follower) RestoreRow(string, db.Tuple, *core.Expr) error { return ErrFollower }

// BuildIndex implements engine.DB; followers refuse writes. (Index
// builds replicate from the leader like every other logged record.)
func (f *Follower) BuildIndex(string, string) error { return ErrFollower }

// DropIndex implements engine.DB; followers refuse writes.
func (f *Follower) DropIndex(string, string) error { return ErrFollower }

// MinimizeAll implements engine.DB; followers refuse writes.
func (f *Follower) MinimizeAll(context.Context) (int64, error) { return 0, ErrFollower }

// SetCommitHook implements engine.DB: the hook rides the replay loop —
// each replicated record the follower applies emits commit events off
// its local engine (with the follower's own epoch numbering), and a
// resync that swaps the replayed engine announces itself as a
// CommitReset. The core store persists across resyncs, so the hook
// survives them.
func (f *Follower) SetCommitHook(h engine.CommitHook) { f.db().SetCommitHook(h) }

// --- follower-side store plumbing ---------------------------------------

// LSN returns the next LSN the log will assign (== records durably
// appended since the origin).
func (s *Store) LSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lsn
}

// applyReplicated appends one replicated record to the local log and
// applies it, validating the payload decodes before anything is
// persisted — a corrupt payload must fail the session, not poison the
// local WAL. Runs the same replay path recovery uses, so follower state
// is byte-identical to a leader that logged the same records.
func (s *Store) applyReplicated(payload []byte) error {
	rec, err := decodeRecord(payload)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrStreamCorrupt, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.appendLocked(payload); err != nil {
		return err
	}
	if err := s.applyDecoded(rec); err != nil {
		return err
	}
	s.maybeCheckpointLocked()
	return nil
}

// newFollowerCore shapes a Store over a fresh (META-less) follower
// directory. The caller supplies the identity via
// bootstrapEmptyFollower or resyncFromCheckpoint before using it.
func newFollowerCore(dir string, release func(), o options) (*Store, error) {
	if release == nil {
		return nil, fmt.Errorf("wal: follower core already established")
	}
	return &Store{dir: dir, fs: o.fs, release: release, opts: o}, nil
}

// bootstrapEmptyFollower initialises a follower directory for an
// incremental-from-zero stream: META plus an empty engine, exactly the
// layout a leader bootstrap with no initial rows produces.
func (s *Store) bootstrapEmptyFollower(mode engine.Mode, schema *db.Schema) error {
	s.setEngine(engine.OpenEmpty(mode, schema, s.opts.engOpts...))
	if err := writeMeta(s.fs, s.dir, mode, schema, false); err != nil {
		return err
	}
	lw, err := openLogWriter(s.fs, s.dir, s.opts.segSize, 0, 0, 0, 0)
	if err != nil {
		return err
	}
	s.lw = lw
	return nil
}

// resyncFromCheckpoint replaces the local state with the leader's
// shipped checkpoint at snapLSN and restarts the log there. Local
// segments are deleted first (they are either superseded or divergent),
// then the checkpoint lands via temp+rename, then stale checkpoints
// go — ordered so a crash at any point leaves a directory that either
// recovers to a consistent prefix or resyncs again on reconnect, never
// one that replays divergent records on top of the new checkpoint.
func (s *Store) resyncFromCheckpoint(mode engine.Mode, schema *db.Schema, snapLSN uint64, ckpt []byte) error {
	eng, err := provstore.LoadSnapshot(bytes.NewReader(ckpt), s.opts.engOpts...)
	if err != nil {
		return fmt.Errorf("%w: shipped checkpoint: %v", ErrStreamCorrupt, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lw != nil {
		s.lw.crash()
		s.lw = nil
	}
	names, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return err
	}
	for _, name := range names {
		if _, ok := parseSeqName(name, segPrefix, segSuffix); ok {
			if err := s.fs.Remove(filepath.Join(s.dir, name)); err != nil {
				return err
			}
		}
	}
	if err := writeBlobAtomic(s.fs, s.dir, ckptName(snapLSN), ckpt); err != nil {
		return err
	}
	if err := writeMeta(s.fs, s.dir, mode, schema, true); err != nil {
		return err
	}
	for _, name := range names {
		if v, ok := parseSeqName(name, ckptPrefix, ckptSuffix); ok && v != snapLSN {
			_ = s.fs.Remove(filepath.Join(s.dir, name))
		}
	}
	_ = s.fs.SyncDir(s.dir)
	lw, err := openLogWriter(s.fs, s.dir, s.opts.segSize, 0, 0, 0, snapLSN)
	if err != nil {
		return err
	}
	s.setEngine(eng)
	s.lw = lw
	s.lsn = snapLSN
	s.ckptLSN = snapLSN
	s.sinceCkpt = 0
	s.hasInit = true
	return nil
}

// writeBlobAtomic lands data at name via temp file + fsync + rename.
func writeBlobAtomic(fs FS, dir, name string, data []byte) error {
	tmp := filepath.Join(dir, name+".tmp")
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		_ = fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		_ = fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = fs.Remove(tmp)
		return err
	}
	if err := fs.Rename(tmp, filepath.Join(dir, name)); err != nil {
		_ = fs.Remove(tmp)
		return err
	}
	return fs.SyncDir(dir)
}
