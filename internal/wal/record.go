package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"hyperprov/internal/core"
	"hyperprov/internal/db"
	"hyperprov/internal/provstore"
)

// Record types. A WAL record is one logical mutation of the store;
// transactions dominate, the rest make every engine.DB write method
// durable.
const (
	recTxn        byte = 1 // one db.Transaction, logged before it is applied
	recRestore    byte = 2 // one RestoreRow call (tuple + annotation)
	recMinimize   byte = 3 // a completed MinimizeAll pass (no payload)
	recBuildIndex byte = 4 // a completed BuildIndex (rel, attr)
	recDropIndex  byte = 5 // a completed DropIndex (rel, attr)
)

// Decode limits: the WAL is written by this process, but recovery must
// survive hostile or bit-rotted files without multi-GB preallocations,
// so every count read from the wire is bounded before use.
const (
	maxWireString = 1 << 24
	maxWireArity  = 1 << 16
	maxWireCount  = 1 << 20
)

// Record is one decoded WAL entry.
type Record struct {
	Type byte
	// Txn is set for recTxn.
	Txn *db.Transaction
	// Rel/Attr are set for recBuildIndex and recDropIndex; Rel, Tuple
	// and Ann for recRestore.
	Rel   string
	Attr  string
	Tuple db.Tuple
	Ann   *core.Expr
}

// --- encoding -----------------------------------------------------------

type recEncoder struct {
	buf bytes.Buffer
	tmp [binary.MaxVarintLen64]byte
}

func (e *recEncoder) byte(b byte) { e.buf.WriteByte(b) }

func (e *recEncoder) uvarint(v uint64) {
	n := binary.PutUvarint(e.tmp[:], v)
	e.buf.Write(e.tmp[:n])
}

func (e *recEncoder) varint(v int64) {
	n := binary.PutVarint(e.tmp[:], v)
	e.buf.Write(e.tmp[:n])
}

func (e *recEncoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf.WriteString(s)
}

func (e *recEncoder) value(v db.Value) {
	e.byte(byte(v.Kind()))
	switch v.Kind() {
	case db.KindString:
		e.str(v.Str())
	case db.KindInt:
		e.varint(v.Int())
	case db.KindFloat:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v.Float()))
		e.buf.Write(b[:])
	}
}

func (e *recEncoder) tuple(t db.Tuple) {
	e.uvarint(uint64(len(t)))
	for _, v := range t {
		e.value(v)
	}
}

func (e *recEncoder) term(t db.Term) {
	if t.IsConst() {
		e.byte(1)
		e.value(t.Value())
		return
	}
	e.byte(0)
	e.str(t.VarName())
	ne := t.NotEq()
	e.uvarint(uint64(len(ne)))
	for _, v := range ne {
		e.value(v)
	}
}

func (e *recEncoder) pattern(p db.Pattern) {
	e.uvarint(uint64(len(p)))
	for _, t := range p {
		e.term(t)
	}
}

func (e *recEncoder) update(u *db.Update) {
	e.byte(byte(u.Kind))
	e.str(u.Rel)
	switch u.Kind {
	case db.OpInsert:
		e.tuple(u.Row)
	case db.OpDelete:
		e.pattern(u.Sel)
	case db.OpModify:
		e.pattern(u.Sel)
		e.uvarint(uint64(len(u.Set)))
		for _, c := range u.Set {
			if c.Set {
				e.byte(1)
				e.value(c.Val)
			} else {
				e.byte(0)
			}
		}
	}
	e.uvarint(uint64(len(u.Conds)))
	for _, c := range u.Conds {
		e.varint(int64(c.Left))
		e.varint(int64(c.Right))
		if c.Neq {
			e.byte(1)
		} else {
			e.byte(0)
		}
	}
}

// encodeTxn renders the canonical record payload for one transaction.
func encodeTxn(t *db.Transaction) []byte {
	var e recEncoder
	e.byte(recTxn)
	e.str(t.Label)
	e.uvarint(uint64(len(t.Updates)))
	for i := range t.Updates {
		e.update(&t.Updates[i])
	}
	return e.buf.Bytes()
}

// encodeRestore renders the record payload for one RestoreRow call. The
// annotation uses the provstore expression codec, so record bytes are
// canonical for structurally equal annotations.
func encodeRestore(rel string, t db.Tuple, ann *core.Expr) ([]byte, error) {
	var e recEncoder
	e.byte(recRestore)
	e.str(rel)
	e.tuple(t)
	if err := provstore.WriteExpr(&e.buf, ann); err != nil {
		return nil, err
	}
	return e.buf.Bytes(), nil
}

func encodeMinimize() []byte { return []byte{recMinimize} }

func encodeIndexOp(typ byte, rel, attr string) []byte {
	var e recEncoder
	e.byte(typ)
	e.str(rel)
	e.str(attr)
	return e.buf.Bytes()
}

// --- decoding -----------------------------------------------------------

type recDecoder struct {
	r *bytes.Reader
}

func (d *recDecoder) byte() (byte, error) { return d.r.ReadByte() }

func (d *recDecoder) uvarint() (uint64, error) { return binary.ReadUvarint(d.r) }

func (d *recDecoder) varint() (int64, error) { return binary.ReadVarint(d.r) }

func (d *recDecoder) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxWireString || n > uint64(d.r.Len()) {
		return "", fmt.Errorf("wal: string length %d exceeds record", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(d.r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func (d *recDecoder) value() (db.Value, error) {
	kind, err := d.byte()
	if err != nil {
		return db.Value{}, err
	}
	switch db.Kind(kind) {
	case db.KindString:
		s, err := d.str()
		if err != nil {
			return db.Value{}, err
		}
		return db.S(s), nil
	case db.KindInt:
		i, err := d.varint()
		if err != nil {
			return db.Value{}, err
		}
		return db.I(i), nil
	case db.KindFloat:
		var b [8]byte
		if _, err := io.ReadFull(d.r, b[:]); err != nil {
			return db.Value{}, err
		}
		return db.F(math.Float64frombits(binary.LittleEndian.Uint64(b[:]))), nil
	default:
		return db.Value{}, fmt.Errorf("wal: unknown value kind %d", kind)
	}
}

func (d *recDecoder) count(limit uint64, what string) (uint64, error) {
	n, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if n > limit {
		return 0, fmt.Errorf("wal: implausible %s count %d", what, n)
	}
	return n, nil
}

func (d *recDecoder) tuple() (db.Tuple, error) {
	n, err := d.count(maxWireArity, "tuple arity")
	if err != nil {
		return nil, err
	}
	t := make(db.Tuple, n)
	for i := range t {
		if t[i], err = d.value(); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func (d *recDecoder) term() (db.Term, error) {
	isConst, err := d.byte()
	if err != nil {
		return db.Term{}, err
	}
	if isConst == 1 {
		v, err := d.value()
		if err != nil {
			return db.Term{}, err
		}
		return db.Const(v), nil
	}
	name, err := d.str()
	if err != nil {
		return db.Term{}, err
	}
	n, err := d.count(maxWireCount, "disequality")
	if err != nil {
		return db.Term{}, err
	}
	if n == 0 {
		return db.AnyVar(name), nil
	}
	ne := make([]db.Value, n)
	for i := range ne {
		if ne[i], err = d.value(); err != nil {
			return db.Term{}, err
		}
	}
	return db.VarNotEq(name, ne...), nil
}

func (d *recDecoder) pattern() (db.Pattern, error) {
	n, err := d.count(maxWireArity, "pattern arity")
	if err != nil {
		return nil, err
	}
	p := make(db.Pattern, n)
	for i := range p {
		if p[i], err = d.term(); err != nil {
			return nil, err
		}
	}
	return p, nil
}

func (d *recDecoder) update() (db.Update, error) {
	var u db.Update
	kind, err := d.byte()
	if err != nil {
		return u, err
	}
	u.Kind = db.UpdateKind(kind)
	if u.Rel, err = d.str(); err != nil {
		return u, err
	}
	switch u.Kind {
	case db.OpInsert:
		if u.Row, err = d.tuple(); err != nil {
			return u, err
		}
	case db.OpDelete:
		if u.Sel, err = d.pattern(); err != nil {
			return u, err
		}
	case db.OpModify:
		if u.Sel, err = d.pattern(); err != nil {
			return u, err
		}
		n, err := d.count(maxWireArity, "set clause")
		if err != nil {
			return u, err
		}
		u.Set = make([]db.SetClause, n)
		for i := range u.Set {
			set, err := d.byte()
			if err != nil {
				return u, err
			}
			if set == 1 {
				v, err := d.value()
				if err != nil {
					return u, err
				}
				u.Set[i] = db.SetTo(v)
			}
		}
	default:
		return u, fmt.Errorf("wal: unknown update kind %d", kind)
	}
	n, err := d.count(maxWireCount, "condition")
	if err != nil {
		return u, err
	}
	for i := uint64(0); i < n; i++ {
		left, err := d.varint()
		if err != nil {
			return u, err
		}
		right, err := d.varint()
		if err != nil {
			return u, err
		}
		neq, err := d.byte()
		if err != nil {
			return u, err
		}
		u.Conds = append(u.Conds, db.AttrCond{Left: int(left), Right: int(right), Neq: neq == 1})
	}
	return u, nil
}

// decodeRecord parses one record payload (the bytes inside a frame).
func decodeRecord(data []byte) (*Record, error) {
	d := &recDecoder{r: bytes.NewReader(data)}
	typ, err := d.byte()
	if err != nil {
		return nil, fmt.Errorf("wal: empty record")
	}
	rec := &Record{Type: typ}
	switch typ {
	case recTxn:
		t := &db.Transaction{}
		if t.Label, err = d.str(); err != nil {
			return nil, err
		}
		n, err := d.count(maxWireCount, "update")
		if err != nil {
			return nil, err
		}
		t.Updates = make([]db.Update, 0, minU64(n, 1024))
		for i := uint64(0); i < n; i++ {
			u, err := d.update()
			if err != nil {
				return nil, err
			}
			t.Updates = append(t.Updates, u)
		}
		rec.Txn = t
	case recRestore:
		if rec.Rel, err = d.str(); err != nil {
			return nil, err
		}
		if rec.Tuple, err = d.tuple(); err != nil {
			return nil, err
		}
		if rec.Ann, err = provstore.ReadExpr(d.r); err != nil {
			return nil, err
		}
	case recMinimize:
		// no payload
	case recBuildIndex, recDropIndex:
		if rec.Rel, err = d.str(); err != nil {
			return nil, err
		}
		if rec.Attr, err = d.str(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("wal: unknown record type %d", typ)
	}
	return rec, nil
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
