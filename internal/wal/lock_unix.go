//go:build unix

package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDir takes an exclusive advisory flock on <dir>/LOCK, refusing a
// second concurrent open of the same data directory. The kernel drops
// the lock automatically when the process dies, so a crash never leaves
// a stale lock behind.
func lockDir(dir string) (release func(), err error) {
	path := filepath.Join(dir, lockFileName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: %s", ErrLocked, path)
	}
	return func() {
		_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		_ = f.Close()
	}, nil
}
