package wal

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// streamChanCap bounds the live-tail buffer per follower. A follower
// that falls further behind than this while attached is detached and
// catches up from the on-disk log instead — the log is the queue; the
// channel only covers the rendezvous.
const streamChanCap = 4096

// streamRec is one record fanned out to attached followers.
type streamRec struct {
	lsn     uint64
	payload []byte
}

// streamHandle is one follower's registration with the leader: its
// read position (which fences log pruning) and, while attached, the
// live-tail channel.
type streamHandle struct {
	pos uint64         // guarded by the store mu
	ch  chan streamRec // non-nil only while attached; guarded by mu
}

// registerStream adds a handle at position pos; pruning retains every
// segment holding records at or after the minimum registered position.
func (s *Store) registerStream(h *streamHandle, pos uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	h.pos = pos
	if s.streams == nil {
		s.streams = make(map[*streamHandle]struct{})
	}
	s.streams[h] = struct{}{}
	s.streamsServed.Add(1)
	return nil
}

func (s *Store) unregisterStream(h *streamHandle) {
	s.mu.Lock()
	if h.ch != nil {
		close(h.ch)
		h.ch = nil
	}
	delete(s.streams, h)
	s.mu.Unlock()
}

// setStreamPos advances the handle's fence.
func (s *Store) setStreamPos(h *streamHandle, pos uint64) {
	s.mu.Lock()
	h.pos = pos
	s.mu.Unlock()
}

// attachStream flips the handle to live tailing if the follower has
// caught up with the log end; otherwise it reports the current end so
// the caller keeps reading from disk. The check and the attach happen
// under the same mu hold as every append, so no record can fall between
// disk catch-up and the channel.
func (s *Store) attachStream(h *streamHandle, pos uint64) (ch chan streamRec, lsn uint64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, 0, ErrClosed
	}
	h.pos = pos
	if pos < s.lsn {
		return nil, s.lsn, nil
	}
	h.ch = make(chan streamRec, streamChanCap)
	return h.ch, s.lsn, nil
}

// closeStreamsLocked wakes every attached stream on store close/crash:
// their drain loops see the closed channel, re-check the store and exit
// with ErrClosed, which drops the transport and sends followers back to
// redialing (where they find the restarted leader).
func (s *Store) closeStreamsLocked() {
	for h := range s.streams {
		if h.ch != nil {
			close(h.ch)
			h.ch = nil
		}
	}
}

func (s *Store) detachStream(h *streamHandle) {
	s.mu.Lock()
	if h.ch != nil {
		close(h.ch)
		h.ch = nil
	}
	s.mu.Unlock()
}

// publishStreamLocked fans freshly committed records out to attached
// followers. Called under mu after the group commit succeeded, so
// followers only ever see records the log has accepted. A follower
// whose channel is full is detached (channel closed); it falls back to
// reading the flushed log from disk.
func (s *Store) publishStreamLocked(base uint64, payloads [][]byte) {
	if len(s.streams) == 0 {
		return
	}
	for h := range s.streams {
		if h.ch == nil {
			continue
		}
		for i, p := range payloads {
			select {
			case h.ch <- streamRec{lsn: base + uint64(i), payload: p}:
			default:
				close(h.ch)
				h.ch = nil
				s.streamLagDrops.Add(1)
			}
			if h.ch == nil {
				break
			}
		}
	}
}

// minStreamPosLocked is the pruning fence: the smallest position any
// registered stream still needs. Segments whose records all precede it
// may be pruned; the rest are retained even if a checkpoint covers
// them, so an active stream never has a segment deleted under it.
func (s *Store) minStreamPosLocked() uint64 {
	min := ^uint64(0)
	for h := range s.streams {
		if h.pos < min {
			min = h.pos
		}
	}
	return min
}

// streamPlan is the decision the leader takes at handshake time.
type streamPlan struct {
	hello   helloMsg
	pos     uint64 // first LSN the record stream will carry
	resync  bool
	ckptLSN uint64
}

// planStream decides, under mu, whether the follower's requested resume
// point can be served from the retained log or needs a full resync from
// the newest checkpoint. A resync is needed when the suffix was pruned,
// when the follower claims a future LSN (it replicated from a leader
// life whose tail this process never recovered — divergence), or when
// a zero follower asks for history whose prefix lives only in the
// bootstrap checkpoint.
func (s *Store) planStream(from uint64) (streamPlan, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return streamPlan{}, ErrClosed
	}
	plan := streamPlan{
		hello: helloMsg{
			mode:    s.engine().Mode(),
			target:  s.lsn,
			horizon: s.engine().Horizon(),
			schema:  s.engine().Schema(),
		},
		pos: from,
	}
	segs, err := listSeqFiles(s.fs, s.dir, segPrefix, segSuffix)
	if err != nil {
		return streamPlan{}, err
	}
	oldest := uint64(0)
	if len(segs) > 0 {
		oldest = segs[0]
	}
	switch {
	case from > s.lsn:
		plan.resync = true
	case from < oldest:
		plan.resync = true
	case from == 0 && s.hasInit:
		// Records alone cannot rebuild the bootstrap rows.
		plan.resync = true
	}
	if plan.resync {
		ckpts, err := listSeqFiles(s.fs, s.dir, ckptPrefix, ckptSuffix)
		if err != nil {
			return streamPlan{}, err
		}
		if len(ckpts) == 0 {
			// No checkpoint to bootstrap from: tell the caller to take
			// one and re-plan (cannot checkpoint under this mu hold in a
			// helper that the checkpoint path itself may contend with).
			return plan, errNoCheckpoint
		}
		plan.ckptLSN = ckpts[len(ckpts)-1]
		plan.pos = plan.ckptLSN
		plan.hello.resync = true
		plan.hello.snapLSN = plan.ckptLSN
	}
	return plan, nil
}

// errNoCheckpoint tells ServeStream to force a checkpoint and re-plan.
var errNoCheckpoint = errors.New("wal: no checkpoint to resync from")

// ServeStream streams the replication feed to one follower over w,
// resuming at from, until ctx is done or a write fails. The sequence
// is: handshake (planStream), optional checkpoint bootstrap, catch-up
// from the on-disk log, then live tailing with heartbeats — falling
// back to disk catch-up whenever the follower cannot keep up with the
// in-memory fan-out. Safe to call concurrently from any number of
// followers; the store keeps accepting writes throughout.
func (s *Store) ServeStream(ctx context.Context, w http.ResponseWriter, from uint64) error {
	return s.serveStream(ctx, w, from)
}

// serveStream is ServeStream over any io.Writer (tests use pipes).
func (s *Store) serveStream(ctx context.Context, w interface{ Write([]byte) (int, error) }, from uint64) error {
	h := &streamHandle{}
	if err := s.registerStream(h, from); err != nil {
		return err
	}
	defer s.unregisterStream(h)
	fw := &frameWriter{w: w}
	if fl, ok := w.(http.Flusher); ok {
		fw.fl = fl
	}

	plan, err := s.planStream(from)
	if errors.Is(err, errNoCheckpoint) {
		if cerr := s.Checkpoint(); cerr != nil {
			return fmt.Errorf("wal: resync needs a checkpoint: %w", cerr)
		}
		plan, err = s.planStream(from)
	}
	if err != nil {
		return err
	}
	pos := plan.pos
	s.setStreamPos(h, pos)
	if err := fw.writeMsg(encodeHello(plan.hello)); err != nil {
		return err
	}
	if plan.resync {
		if err := s.streamCheckpoint(fw, plan.ckptLSN); err != nil {
			return err
		}
		s.resyncsServed.Add(1)
	}

	hb := time.NewTicker(s.opts.heartbeat)
	defer hb.Stop()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		// Catch up from the on-disk log until we draw level, then
		// rendezvous onto the live channel under the append lock.
		ch, end, err := s.attachStream(h, pos)
		if err != nil {
			return err
		}
		if ch == nil {
			n, err := s.streamFromDisk(fw, h, pos, end)
			if err != nil {
				return err
			}
			pos = n
			continue
		}
	drain:
		for {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case m, ok := <-ch:
				if !ok {
					// Overflowed: the log has everything, go back to disk.
					break drain
				}
				if err := fw.writeMsg(encodeStreamRecord(m.lsn, m.payload)); err != nil {
					return err
				}
				pos = m.lsn + 1
			case <-hb.C:
				s.mu.Lock()
				lsn, horizon := s.lsn, s.engine().Horizon()
				s.mu.Unlock()
				if err := fw.writeMsg(encodeHeartbeat(lsn, horizon)); err != nil {
					return err
				}
			}
		}
		s.detachStream(h)
		s.setStreamPos(h, pos)
	}
}

// streamCheckpoint ships the checkpoint file at lsn in chunks. The file
// is immutable once renamed into place and the newest checkpoint is
// never pruned, but a checkpoint that was superseded between planning
// and reading can vanish — the caller's reconnect logic handles the
// resulting error.
func (s *Store) streamCheckpoint(fw *frameWriter, lsn uint64) error {
	data, err := s.fs.ReadFile(filepath.Join(s.dir, ckptName(lsn)))
	if err != nil {
		return err
	}
	for off := 0; off < len(data); off += ckptChunkSize {
		end := off + ckptChunkSize
		if end > len(data) {
			end = len(data)
		}
		msg := make([]byte, 0, 1+end-off)
		msg = append(msg, msgCkptChunk)
		msg = append(msg, data[off:end]...)
		if err := fw.writeMsg(msg); err != nil {
			return err
		}
	}
	return fw.writeMsg(encodeCkptDone(lsn))
}

// streamFromDisk streams records [pos, end) out of the segment files
// and returns the new position. Committed records are always fully
// flushed to the OS before end was observed, so the prefix read here is
// complete even while the writer keeps appending; scanSegment's torn
// tail (a racing flush) lies beyond end and is never consumed.
func (s *Store) streamFromDisk(fw *frameWriter, h *streamHandle, pos, end uint64) (uint64, error) {
	for pos < end {
		segs, err := listSeqFiles(s.fs, s.dir, segPrefix, segSuffix)
		if err != nil {
			return pos, err
		}
		idx := sort.Search(len(segs), func(i int) bool { return segs[i] > pos })
		if idx == 0 {
			return pos, fmt.Errorf("wal: log position %d is no longer retained", pos)
		}
		start := segs[idx-1]
		data, err := s.fs.ReadFile(filepath.Join(s.dir, segName(start)))
		if err != nil {
			if os.IsNotExist(err) {
				// Pruned between listing and reading; the fence keeps
				// everything >= pos, so a re-list finds the right file.
				continue
			}
			return pos, err
		}
		sc := scanSegment(data)
		if pos-start >= uint64(len(sc.records)) {
			// pos is past this segment's records: the next segment (if
			// rotated by now) holds it; re-list and retry.
			if idx < len(segs) {
				continue
			}
			return pos, nil
		}
		for _, payload := range sc.records[pos-start:] {
			if pos >= end {
				break
			}
			if err := fw.writeMsg(encodeStreamRecord(pos, payload)); err != nil {
				return pos, err
			}
			pos++
		}
		s.setStreamPos(h, pos)
	}
	return pos, nil
}
