package wal_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hyperprov/internal/core"
	"hyperprov/internal/db"
	"hyperprov/internal/engine"
	"hyperprov/internal/wal"
	"hyperprov/internal/workload"
)

// pinnedWorkload generates the fully pinned update sequence (every
// selection names one concrete live tuple), the shard-routing fast path.
func pinnedWorkload(t *testing.T) (*db.Database, []db.Transaction) {
	t.Helper()
	initial, txns, err := workload.GeneratePinned(workload.Config{
		Tuples: 300, Pool: 30, Group: 3, Updates: 150,
		QueriesPerTxn: 3, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return initial, txns
}

// leaderProxy serves a store's replication stream over HTTP, the same
// transport production followers use. The store pointer is swappable so
// fault tests can crash and reopen the leader behind a stable URL.
type leaderProxy struct {
	st atomic.Pointer[wal.Store]
}

func (lp *leaderProxy) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	from, err := strconv.ParseUint(req.URL.Query().Get("from"), 10, 64)
	if err != nil {
		http.Error(w, "bad from", http.StatusBadRequest)
		return
	}
	_ = lp.st.Load().ServeStream(req.Context(), w, from)
}

// startLeaderServer exposes st's replication stream on a loopback HTTP
// server and returns the swappable proxy plus a StreamSource dialing it.
func startLeaderServer(t *testing.T, st *wal.Store) (*leaderProxy, wal.StreamSource) {
	t.Helper()
	lp := &leaderProxy{}
	lp.st.Store(st)
	ts := httptest.NewServer(lp)
	t.Cleanup(ts.Close)
	return lp, wal.HTTPSource(ts.URL, nil)
}

// openTestFollower opens a follower of src in its own temp dir with a
// bounded bootstrap wait and closes it with the test.
func openTestFollower(t *testing.T, dir string, src wal.StreamSource, opts ...wal.Option) *wal.Follower {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	f, err := wal.OpenFollower(ctx, dir, src, opts...)
	if err != nil {
		t.Fatalf("OpenFollower: %v", err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// waitApplied blocks until the follower's applied LSN reaches lsn.
func waitApplied(t *testing.T, f *wal.Follower, lsn uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if f.ReplicaStats().AppliedLSN >= lsn {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	rs := f.ReplicaStats()
	t.Fatalf("follower stuck at LSN %d waiting for %d (leader %d, last error %q)",
		rs.AppliedLSN, lsn, rs.LeaderLSN, rs.LastError)
}

// nfString renders an NF's observable shape for comparison. Naive-mode
// engines answer nil NFs; nil must compare equal to nil.
func nfString(n *core.NF) string {
	if n == nil {
		return "<nil>"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "k%d|%s|%s", n.Kind(), n.Base(), n.P())
	for _, e := range n.Sum() {
		fmt.Fprintf(&b, "|%s", e)
	}
	return b.String()
}

// requireSameReads compares the full read API of two readers: relation
// lists, every row with its annotation and NF, and a full-wildcard
// Select per relation. Row order is the engine's deterministic
// streaming order, so identical state must yield identical walks.
func requireSameReads(t *testing.T, label string, want, got engine.Reader) {
	t.Helper()
	if w, g := want.NumRows(), got.NumRows(); w != g {
		t.Fatalf("%s: NumRows %d vs %d", label, w, g)
	}
	if w, g := want.SupportSize(), got.SupportSize(); w != g {
		t.Fatalf("%s: SupportSize %d vs %d", label, w, g)
	}
	rels := want.Relations()
	if g := got.Relations(); len(g) != len(rels) {
		t.Fatalf("%s: %d relations vs %d", label, len(rels), len(g))
	}
	type row struct{ key, ann string }
	for _, rel := range rels {
		var wantRows, gotRows []row
		want.EachRow(rel, func(tp db.Tuple, ann *core.Expr) {
			wantRows = append(wantRows, row{tp.Key(), ann.String()})
		})
		got.EachRow(rel, func(tp db.Tuple, ann *core.Expr) {
			gotRows = append(gotRows, row{tp.Key(), ann.String()})
		})
		if len(wantRows) != len(gotRows) {
			t.Fatalf("%s: %s has %d rows vs %d", label, rel, len(wantRows), len(gotRows))
		}
		for i := range wantRows {
			if wantRows[i] != gotRows[i] {
				t.Fatalf("%s: %s row %d differs:\n  leader   %v\n  follower %v",
					label, rel, i, wantRows[i], gotRows[i])
			}
		}
		// NF agreement on a sample of rows (NF is derived per lookup, so
		// checking every row of every relation would dominate the test).
		var tuples []db.Tuple
		want.EachRow(rel, func(tp db.Tuple, _ *core.Expr) { tuples = append(tuples, tp) })
		for i := 0; i < len(tuples); i += 1 + len(tuples)/16 {
			w, g := nfString(want.NF(rel, tuples[i])), nfString(got.NF(rel, tuples[i]))
			if w != g {
				t.Fatalf("%s: %s NF(%s) differs:\n  leader   %s\n  follower %s",
					label, rel, tuples[i].Key(), w, g)
			}
		}
		// Full-wildcard Select through the scan planner.
		schema := want.Schema().Relation(rel)
		pat := make(db.Pattern, len(schema.Attrs))
		for i := range pat {
			pat[i] = db.AnyVar(fmt.Sprintf("x%d", i))
		}
		ws, err := want.Select(rel, pat)
		if err != nil {
			t.Fatalf("%s: leader Select(%s): %v", label, rel, err)
		}
		gs, err := got.Select(rel, pat)
		if err != nil {
			t.Fatalf("%s: follower Select(%s): %v", label, rel, err)
		}
		if len(ws) != len(gs) {
			t.Fatalf("%s: Select(%s) %d tuples vs %d", label, rel, len(ws), len(gs))
		}
		for i := range ws {
			if ws[i].Key() != gs[i].Key() {
				t.Fatalf("%s: Select(%s)[%d] %s vs %s", label, rel, i, ws[i].Key(), gs[i].Key())
			}
		}
	}
}

// TestReplicationDifferential is the tentpole acceptance test of the
// replication subsystem: a follower bootstrapped from a live leader
// mid-workload, then fed the rest over the stream, must answer the
// entire read API byte-identically to the leader — snapshots,
// annotations, NFs, Selects, and ?as_of= time travel at every epoch —
// swept over shard counts, both provenance modes, and three workloads.
func TestReplicationDifferential(t *testing.T) {
	type load struct {
		name string
		gen  func(t *testing.T) (*db.Database, []db.Transaction)
	}
	loads := []load{{"random", smallWorkload}, {"pinned", pinnedWorkload}, {"tpcc", tpccWorkload}}
	for _, ld := range loads {
		for _, mode := range modes {
			for _, shards := range []int{1, 8} {
				name := fmt.Sprintf("%s/%s/shards=%d", ld.name, modeName(mode), shards)
				t.Run(name, func(t *testing.T) {
					initial, txns := ld.gen(t)
					st, err := wal.Open(t.TempDir(),
						wal.WithMode(mode),
						wal.WithInitialDatabase(initial),
						wal.WithEngineOptions(engine.WithShards(shards)),
						wal.WithSync(wal.SyncNever),
						wal.WithSegmentSize(4096),
						wal.WithCheckpointEvery(40),
						wal.WithHeartbeatEvery(20*time.Millisecond),
					)
					if err != nil {
						t.Fatalf("open leader: %v", err)
					}
					defer st.Close()

					// First half before the follower exists: it arrives via
					// checkpoint bootstrap + disk catch-up, not the live tail.
					half := len(txns) / 2
					if err := st.ApplyAll(context.Background(), txns[:half]); err != nil {
						t.Fatalf("ApplyAll: %v", err)
					}
					_, src := startLeaderServer(t, st)
					// The follower runs with the opposite shard count
					// (replicated state is engine-shape independent) and
					// never checkpoints locally, so its bootstrap point
					// stays readable below.
					f := openTestFollower(t, t.TempDir(), src,
						wal.WithEngineOptions(engine.WithShards(9-shards)),
						wal.WithSync(wal.SyncNever),
						wal.WithSegmentSize(4096),
					)
					// Second half lands while the follower is streaming live.
					for i := half; i < len(txns); i++ {
						if err := st.ApplyTransaction(&txns[i]); err != nil {
							t.Fatalf("ApplyTransaction %d: %v", i, err)
						}
					}
					waitApplied(t, f, st.Stats().LSN)

					if !f.Ready() {
						t.Fatal("caught-up follower is not ready")
					}
					requireSameBytes(t, "live state", snapshotOf(t, st), snapshotOf(t, f))
					requireSameReads(t, "live state", st, f)

					// Time travel: epoch numbering is per process life, so
					// absolute epochs differ (the follower's bootstrap from
					// the checkpoint at LSN c consumed its own epochs), but
					// every record replicated after the bootstrap advanced
					// both engines by exactly one write epoch. Views k
					// epochs below the two horizons therefore pin the same
					// record boundary and must agree row for row.
					leaderEpoch := engine.SeqEpoch(st.Horizon())
					followerEpoch := engine.SeqEpoch(f.Horizon())
					c := f.WALStats().CheckpointLSN // bootstrap point: no local checkpoints ran
					span := uint64(len(txns)) - c
					for _, k := range []uint64{0, 1, span / 2, span - 1} {
						if k >= span || k > leaderEpoch || k > followerEpoch {
							continue
						}
						requireSameReads(t, fmt.Sprintf("as_of horizon-%d", k),
							st.At(engine.EpochSeq(leaderEpoch-k)), f.At(engine.EpochSeq(followerEpoch-k)))
					}

					rs := f.ReplicaStats()
					if rs.AppliedLSN != uint64(len(txns)) {
						t.Fatalf("follower applied %d, want %d", rs.AppliedLSN, len(txns))
					}
				})
			}
		}
	}
}

// TestFollowerRestartResume pins the resume contract: a follower that
// closed cleanly and reopens against a leader that kept writing resumes
// incrementally from its durable LSN — no resync, no re-streamed
// history — and converges to equality.
func TestFollowerRestartResume(t *testing.T) {
	initial, txns := smallWorkload(t)
	st, err := wal.Open(t.TempDir(),
		wal.WithMode(engine.ModeNormalForm),
		wal.WithInitialDatabase(initial),
		wal.WithSync(wal.SyncNever),
		wal.WithSegmentSize(4096),
		wal.WithHeartbeatEvery(20*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	_, src := startLeaderServer(t, st)

	half := len(txns) / 2
	if err := st.ApplyAll(context.Background(), txns[:half]); err != nil {
		t.Fatal(err)
	}
	fdir := t.TempDir()
	f := openTestFollower(t, fdir, src, wal.WithSync(wal.SyncNever))
	waitApplied(t, f, uint64(half))
	if rs := f.ReplicaStats(); rs.Resyncs != 1 {
		// The first connect of a fresh follower to a bootstrapped leader
		// is always a checkpoint resync.
		t.Fatalf("fresh follower resyncs = %d, want 1", rs.Resyncs)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Leader keeps writing while the follower is down.
	for i := half; i < len(txns); i++ {
		if err := st.ApplyTransaction(&txns[i]); err != nil {
			t.Fatal(err)
		}
	}

	re := openTestFollower(t, fdir, src, wal.WithSync(wal.SyncNever))
	waitApplied(t, re, uint64(len(txns)))
	if rs := re.ReplicaStats(); rs.Resyncs != 0 {
		t.Fatalf("restarted follower resynced %d times; want incremental resume", rs.Resyncs)
	}
	// The records counter trails the published LSN by one increment, so
	// poll it to its settled value before requiring exactness.
	missed := uint64(len(txns) - half)
	deadline := time.Now().Add(5 * time.Second)
	for re.ReplicaStats().RecordsApplied < missed && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := re.ReplicaStats().RecordsApplied; got != missed {
		t.Fatalf("restarted follower applied %d records, want exactly the missed %d (no re-streaming)",
			got, missed)
	}
	requireSameBytes(t, "after restart", snapshotOf(t, st), snapshotOf(t, re))
	requireSameReads(t, "after restart", st, re)
}

// TestFollowerResyncAfterPrune covers the pruned-suffix path: a
// follower that was down while the leader checkpointed past its resume
// point gets a full checkpoint resync (its stale local state is
// discarded) and still converges to equality.
func TestFollowerResyncAfterPrune(t *testing.T) {
	initial, txns := smallWorkload(t)
	st, err := wal.Open(t.TempDir(),
		wal.WithMode(engine.ModeNormalForm),
		wal.WithInitialDatabase(initial),
		wal.WithSync(wal.SyncNever),
		wal.WithSegmentSize(2048),
		wal.WithHeartbeatEvery(20*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	_, src := startLeaderServer(t, st)

	half := len(txns) / 2
	if err := st.ApplyAll(context.Background(), txns[:half]); err != nil {
		t.Fatal(err)
	}
	fdir := t.TempDir()
	f := openTestFollower(t, fdir, src, wal.WithSync(wal.SyncNever))
	waitApplied(t, f, uint64(half))
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// The closed follower's serving session unregisters asynchronously
	// (the leader notices the dropped connection); wait it out so its
	// position no longer fences pruning.
	deadline := time.Now().Add(10 * time.Second)
	for st.Stats().ActiveStreams != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := st.Stats().ActiveStreams; n != 0 {
		t.Fatalf("leader still has %d active streams after follower close", n)
	}

	// With no streams registered the checkpoint prunes every covered
	// segment; the follower's resume point is gone.
	for i := half; i < len(txns); i++ {
		if err := st.ApplyTransaction(&txns[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	re := openTestFollower(t, fdir, src, wal.WithSync(wal.SyncNever))
	waitApplied(t, re, uint64(len(txns)))
	if rs := re.ReplicaStats(); rs.Resyncs == 0 {
		t.Fatal("follower resumed incrementally from a pruned position")
	}
	if stats := st.Stats(); stats.ResyncsServed == 0 {
		t.Fatal("leader served no resync")
	}
	requireSameBytes(t, "after prune resync", snapshotOf(t, st), snapshotOf(t, re))
	requireSameReads(t, "after prune resync", st, re)
}

// TestLeaderCheckpointDuringStream races checkpoints (which prune
// segments) against an attached live stream: the stream's position
// fences pruning, so the follower must keep converging incrementally —
// no resync after the initial bootstrap — across repeated checkpoints.
func TestLeaderCheckpointDuringStream(t *testing.T) {
	initial, txns := smallWorkload(t)
	st, err := wal.Open(t.TempDir(),
		wal.WithMode(engine.ModeNormalForm),
		wal.WithInitialDatabase(initial),
		wal.WithSync(wal.SyncNever),
		wal.WithSegmentSize(1024),
		wal.WithHeartbeatEvery(10*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	_, src := startLeaderServer(t, st)
	f := openTestFollower(t, t.TempDir(), src, wal.WithSync(wal.SyncNever))
	boot := f.ReplicaStats().Resyncs

	for i := range txns {
		if err := st.ApplyTransaction(&txns[i]); err != nil {
			t.Fatal(err)
		}
		if i%10 == 9 {
			if err := st.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitApplied(t, f, uint64(len(txns)))
	if rs := f.ReplicaStats(); rs.Resyncs != boot {
		t.Fatalf("checkpoints forced %d resyncs on an attached stream", rs.Resyncs-boot)
	}
	requireSameBytes(t, "checkpoint race", snapshotOf(t, st), snapshotOf(t, f))
	requireSameReads(t, "checkpoint race", st, f)
}

// TestFollowerRefusesWrites pins the write-rejection contract: every
// mutating engine.DB method answers ErrFollower, and reads keep
// working afterwards.
func TestFollowerRefusesWrites(t *testing.T) {
	initial, txns := smallWorkload(t)
	st, err := wal.Open(t.TempDir(),
		wal.WithMode(engine.ModeNormalForm),
		wal.WithInitialDatabase(initial),
		wal.WithSync(wal.SyncNever),
		wal.WithHeartbeatEvery(20*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.ApplyAll(context.Background(), txns[:10]); err != nil {
		t.Fatal(err)
	}
	_, src := startLeaderServer(t, st)
	f := openTestFollower(t, t.TempDir(), src, wal.WithSync(wal.SyncNever))
	waitApplied(t, f, 10)

	ctx := context.Background()
	checks := map[string]error{
		"ApplyTransaction": f.ApplyTransaction(&txns[10]),
		"ApplyAll":         f.ApplyAll(ctx, txns[10:12]),
		"RestoreRow":       f.RestoreRow("nope", nil, nil),
		"BuildIndex":       f.BuildIndex("nope", "nope"),
		"DropIndex":        f.DropIndex("nope", "nope"),
	}
	if _, err := f.ApplyBatch(ctx, txns[10:12]); err != nil {
		checks["ApplyBatch"] = err
	} else {
		t.Fatal("ApplyBatch succeeded on a follower")
	}
	if _, err := f.MinimizeAll(ctx); err != nil {
		checks["MinimizeAll"] = err
	} else {
		t.Fatal("MinimizeAll succeeded on a follower")
	}
	for name, err := range checks {
		if err != wal.ErrFollower {
			t.Fatalf("%s: err = %v, want ErrFollower", name, err)
		}
	}
	if f.NumRows() == 0 {
		t.Fatal("reads broke after refused writes")
	}
	if rs := f.ReplicaStats(); rs.AppliedLSN != 10 {
		t.Fatalf("refused writes moved the applied LSN to %d", rs.AppliedLSN)
	}
}

// BenchmarkReplicaLag measures end-to-end replication throughput: the
// wall time for a follower to observe, persist and apply transactions
// committed on a live leader, reported as the time per replicated
// transaction (commit on the leader through visible on the follower).
func BenchmarkReplicaLag(b *testing.B) {
	initial, txns, err := workload.Generate(workload.Config{
		Tuples: 300, Pool: 30, Group: 3, Updates: 256,
		QueriesPerTxn: 3, MergeRatio: 0.2, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	st, err := wal.Open(b.TempDir(),
		wal.WithMode(engine.ModeNormalForm),
		wal.WithInitialDatabase(initial),
		wal.WithSync(wal.SyncNever),
		wal.WithHeartbeatEvery(20*time.Millisecond),
	)
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	lp := &leaderProxy{}
	lp.st.Store(st)
	ts := httptest.NewServer(lp)
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	f, err := wal.OpenFollower(ctx, b.TempDir(), wal.HTTPSource(ts.URL, nil), wal.WithSync(wal.SyncNever))
	cancel()
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := txns[i%len(txns)]
		if err := st.ApplyTransaction(&tx); err != nil {
			b.Fatal(err)
		}
		target := st.Stats().LSN
		for f.ReplicaStats().AppliedLSN < target {
			time.Sleep(50 * time.Microsecond)
		}
	}
}
