package wal_test

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hyperprov/internal/engine"
	"hyperprov/internal/wal"
)

// Environment plumbing of the replication torture harness. Each child
// test re-execs the test binary with one of these set.
const (
	replFollowerDirEnv = "HYPERPROV_REPL_FOLLOWER_DIR"
	replLeaderURLEnv   = "HYPERPROV_REPL_LEADER_URL"
	replTargetEnv      = "HYPERPROV_REPL_TARGET"
	replLeaderDirEnv   = "HYPERPROV_REPL_LEADER_DIR"
)

// TestReplFollowerTortureChildProcess is the re-exec target of the
// follower-kill torture: it opens (or crash-recovers) the follower
// directory against the parent's leader, prints "APPLIED <n>" as the
// durably applied LSN advances, and "DONE" once it reaches the target —
// then exits via Crash, never a clean close.
func TestReplFollowerTortureChildProcess(t *testing.T) {
	dir := os.Getenv(replFollowerDirEnv)
	if dir == "" {
		t.Skip("torture child: run by TestReplicationFollowerKillTorture")
	}
	leader := os.Getenv(replLeaderURLEnv)
	target, err := strconv.ParseUint(os.Getenv(replTargetEnv), 10, 64)
	if err != nil {
		fmt.Printf("CHILD-ERR bad target: %v\n", err)
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	f, err := wal.OpenFollower(ctx, dir, wal.HTTPSource(leader, nil), wal.WithSync(wal.SyncAlways))
	if err != nil {
		fmt.Printf("CHILD-ERR open: %v\n", err)
		t.Fatalf("open: %v", err)
	}
	last := f.ReplicaStats().AppliedLSN
	fmt.Printf("RECOVERED %d\n", last)
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		n := f.ReplicaStats().AppliedLSN
		if n != last {
			last = n
			fmt.Printf("APPLIED %d\n", n)
		}
		if n >= target {
			fmt.Println("DONE")
			f.Crash()
			return
		}
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("CHILD-ERR timeout at %d of %d\n", last, target)
	t.Fatalf("timeout at %d of %d", last, target)
}

// TestReplicationFollowerKillTorture SIGKILLs a follower process
// mid-sync, repeatedly, while the leader keeps committing. After every
// kill the follower's directory must crash-recover to a clean prefix of
// the leader's history — every APPLIED the child reported survived,
// nothing beyond the leader's log exists, and the state is
// byte-identical to the oracle at the recovered LSN. The final round
// runs to full convergence.
func TestReplicationFollowerKillTorture(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess torture test")
	}
	if os.Getenv(replFollowerDirEnv) != "" || os.Getenv(replLeaderDirEnv) != "" {
		t.Skip("already in torture child")
	}
	initial, txns := smallWorkload(t)
	st, err := wal.Open(t.TempDir(),
		wal.WithMode(engine.ModeNormalForm),
		wal.WithInitialDatabase(initial),
		wal.WithSync(wal.SyncNever),
		wal.WithSegmentSize(2048),
		wal.WithCheckpointEvery(23),
		wal.WithHeartbeatEvery(20*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	lp := &leaderProxy{}
	lp.st.Store(st)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: lp}
	go srv.Serve(ln)
	defer srv.Close()
	leaderURL := "http://" + ln.Addr().String()

	// The leader commits continuously in the background while children
	// sync and die.
	writerDone := make(chan error, 1)
	go func() {
		for i := range txns {
			if err := st.ApplyTransaction(&txns[i]); err != nil {
				writerDone <- fmt.Errorf("apply %d: %w", i, err)
				return
			}
			time.Sleep(4 * time.Millisecond)
		}
		writerDone <- nil
	}()
	defer func() {
		if err := <-writerDone; err != nil {
			t.Errorf("leader writer: %v", err)
		}
	}()

	fdir := t.TempDir()
	lastApplied := uint64(0)
	for round := 0; round < 4; round++ {
		final := round == 3
		cmd := exec.Command(os.Args[0], "-test.run=TestReplFollowerTortureChildProcess$", "-test.v")
		cmd.Env = append(os.Environ(),
			replFollowerDirEnv+"="+fdir,
			replLeaderURLEnv+"="+leaderURL,
			replTargetEnv+"="+strconv.Itoa(len(txns)),
		)
		out, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = cmd.Stdout
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		killAfter := lastApplied + 6 + uint64(round)*5
		done := false
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "APPLIED "):
				n, err := strconv.ParseUint(strings.TrimPrefix(line, "APPLIED "), 10, 64)
				if err != nil {
					t.Fatalf("bad line %q", line)
				}
				lastApplied = n
				if !final && n >= killAfter {
					_ = cmd.Process.Kill()
				}
			case strings.HasPrefix(line, "RECOVERED "):
				n, _ := strconv.ParseUint(strings.TrimPrefix(line, "RECOVERED "), 10, 64)
				if n < lastApplied {
					t.Fatalf("round %d: child recovered %d, but %d were applied durably", round, n, lastApplied)
				}
				lastApplied = n
			case line == "DONE":
				done = true
			case strings.HasPrefix(line, "CHILD-ERR"):
				t.Fatalf("round %d: %s", round, line)
			}
		}
		werr := cmd.Wait()
		if final && !done {
			t.Fatalf("final round: child did not converge: %v", werr)
		}
		time.Sleep(10 * time.Millisecond)

		// The killed follower's directory is a plain WAL directory: it
		// must recover (under wal.Open, proving promotability) to a
		// prefix of the leader's history, byte-identical to the oracle.
		re, err := wal.Open(fdir)
		if err != nil {
			t.Fatalf("round %d: reopen follower dir: %v", round, err)
		}
		lsn := re.Stats().LSN
		if lsn < lastApplied {
			t.Fatalf("round %d: silent loss: child applied %d, dir recovered %d", round, lastApplied, lsn)
		}
		if lsn > uint64(len(txns)) {
			t.Fatalf("round %d: follower dir has %d records, leader only ever wrote %d", round, lsn, len(txns))
		}
		oracle := oracleAt(t, engine.ModeNormalForm, initial, txns, int(lsn))
		requireSameBytes(t, fmt.Sprintf("round %d", round), snapshotOf(t, oracle), snapshotOf(t, re))
		re.Crash()
		lastApplied = lsn
		if final && lsn != uint64(len(txns)) {
			t.Fatalf("final round: converged to %d of %d", lsn, len(txns))
		}
	}
}

// TestReplLeaderTortureChildProcess is the re-exec target of the
// leader-kill torture: it opens (or crash-recovers) the leader store,
// serves the replication stream on a fresh loopback port (printed as
// "PORT <p>"), applies the workload from the recovered LSN printing
// "ACK <n>" per record, then parks until the parent kills it.
func TestReplLeaderTortureChildProcess(t *testing.T) {
	dir := os.Getenv(replLeaderDirEnv)
	if dir == "" {
		t.Skip("torture child: run by TestReplicationLeaderKillTorture")
	}
	initial, txns := smallWorkload(t)
	st, err := wal.Open(dir,
		wal.WithMode(engine.ModeNormalForm),
		wal.WithInitialDatabase(initial),
		wal.WithSync(wal.SyncAlways),
		wal.WithSegmentSize(2048),
		wal.WithCheckpointEvery(23),
		wal.WithHeartbeatEvery(20*time.Millisecond),
	)
	if err != nil {
		fmt.Printf("CHILD-ERR open: %v\n", err)
		t.Fatalf("open: %v", err)
	}
	start := st.Stats().LSN
	fmt.Printf("RECOVERED %d\n", start)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Printf("CHILD-ERR listen: %v\n", err)
		t.Fatal(err)
	}
	go http.Serve(ln, http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		from, _ := strconv.ParseUint(req.URL.Query().Get("from"), 10, 64)
		_ = st.ServeStream(req.Context(), w, from)
	}))
	fmt.Printf("PORT %d\n", ln.Addr().(*net.TCPAddr).Port)
	for i := int(start); i < len(txns); i++ {
		if err := st.ApplyTransaction(&txns[i]); err != nil {
			fmt.Printf("CHILD-ERR apply %d: %v\n", i, err)
			t.Fatalf("apply %d: %v", i, err)
		}
		fmt.Printf("ACK %d\n", i+1)
		time.Sleep(time.Millisecond)
	}
	fmt.Println("DONE")
	// Keep serving the stream until the parent kills us.
	time.Sleep(2 * time.Minute)
}

// TestReplicationLeaderKillTorture SIGKILLs the leader process
// mid-commit, repeatedly, under a live in-process follower. The
// invariant: the follower never diverges from a durably-applied leader
// prefix — after every kill its state is byte-identical to the oracle
// at its applied LSN, and the crash-recovered leader's log is always at
// or ahead of that LSN. The final round converges to full equality.
func TestReplicationLeaderKillTorture(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess torture test")
	}
	if os.Getenv(replFollowerDirEnv) != "" || os.Getenv(replLeaderDirEnv) != "" {
		t.Skip("already in torture child")
	}
	initial, txns := smallWorkload(t)
	ldir := t.TempDir()

	// The leader's port changes across restarts; the follower redials
	// through this indirection.
	var base atomic.Value // string URL
	src := func(ctx context.Context, from uint64) (io.ReadCloser, error) {
		return wal.HTTPSource(base.Load().(string), nil)(ctx, from)
	}

	var follower *wal.Follower
	lastAck := uint64(0)
	for round := 0; round < 4; round++ {
		final := round == 3
		cmd := exec.Command(os.Args[0], "-test.run=TestReplLeaderTortureChildProcess$", "-test.v")
		cmd.Env = append(os.Environ(), replLeaderDirEnv+"="+ldir)
		out, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = cmd.Stdout
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		killAfter := lastAck + 6 + uint64(round)*5
		done := false
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "PORT "):
				p := strings.TrimPrefix(line, "PORT ")
				base.Store("http://127.0.0.1:" + p)
				if follower == nil {
					ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
					follower, err = wal.OpenFollower(ctx, t.TempDir(), src, wal.WithSync(wal.SyncNever))
					cancel()
					if err != nil {
						t.Fatalf("open follower: %v", err)
					}
					defer follower.Close()
				}
			case strings.HasPrefix(line, "ACK "):
				n, err := strconv.ParseUint(strings.TrimPrefix(line, "ACK "), 10, 64)
				if err != nil {
					t.Fatalf("bad line %q", line)
				}
				lastAck = n
				if !final && n >= killAfter {
					_ = cmd.Process.Kill()
				}
			case strings.HasPrefix(line, "RECOVERED "):
				n, _ := strconv.ParseUint(strings.TrimPrefix(line, "RECOVERED "), 10, 64)
				if n < lastAck {
					t.Fatalf("round %d: leader recovered %d, but %d were acked", round, n, lastAck)
				}
				if follower != nil {
					if k := follower.ReplicaStats().AppliedLSN; n < k {
						t.Fatalf("round %d: leader recovered %d, behind the follower at %d — replicated unsynced records", round, n, k)
					}
				}
				lastAck = n
			case line == "DONE":
				done = true
				// Converge, then bring the leader down for the last time.
				waitApplied(t, follower, uint64(len(txns)))
				_ = cmd.Process.Kill()
			case strings.HasPrefix(line, "CHILD-ERR"):
				t.Fatalf("round %d: %s", round, line)
			}
		}
		werr := cmd.Wait()
		if final && !done {
			t.Fatalf("final round: leader child did not finish: %v", werr)
		}
		time.Sleep(10 * time.Millisecond)

		// With the leader dead, the follower must sit on a consistent
		// durably-applied prefix: wait for the apply loop to quiesce,
		// then compare against the oracle at exactly its LSN.
		var k uint64
		for {
			k = follower.ReplicaStats().AppliedLSN
			time.Sleep(50 * time.Millisecond)
			if follower.ReplicaStats().AppliedLSN == k {
				break
			}
		}
		if k < lastAck && final {
			t.Fatalf("final round: follower at %d, leader acked %d", k, lastAck)
		}
		if k > uint64(len(txns)) {
			t.Fatalf("round %d: follower at %d, only %d records exist", round, k, len(txns))
		}
		oracle := oracleAt(t, engine.ModeNormalForm, initial, txns, int(k))
		requireSameBytes(t, fmt.Sprintf("round %d (LSN %d)", round, k), snapshotOf(t, oracle), snapshotOf(t, follower))
	}
	if got := follower.ReplicaStats().AppliedLSN; got != uint64(len(txns)) {
		t.Fatalf("follower converged to %d of %d", got, len(txns))
	}
}
