package wal

import (
	"math/rand"
	"reflect"
	"testing"

	"hyperprov/internal/db"
	"hyperprov/internal/workload"
)

// TestTxnCodecRoundTrip encodes generated hyperplane transactions and
// checks decode reproduces them field for field.
func TestTxnCodecRoundTrip(t *testing.T) {
	_, txns, err := workload.Generate(workload.Config{
		Tuples: 100, Pool: 20, Group: 2, Updates: 200,
		QueriesPerTxn: 4, MergeRatio: 0.3, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Mix in attribute conditions and disequalities, which the
	// generator does not emit.
	txns = append(txns, db.Transaction{Label: "ext", Updates: []db.Update{
		{
			Kind: db.OpDelete, Rel: "R",
			Sel: db.Pattern{
				db.AnyVar("a"), db.VarNotEq("b", db.I(3), db.I(9)),
				db.Const(db.S("alpha")), db.AnyVar("d"), db.AnyVar("e"),
			},
			Conds: []db.AttrCond{{Left: 1, Right: 3}, {Left: 0, Right: 3, Neq: true}},
		},
	}})
	for i := range txns {
		payload := encodeTxn(&txns[i])
		rec, err := decodeRecord(payload)
		if err != nil {
			t.Fatalf("txn %d: decode: %v", i, err)
		}
		if rec.Type != recTxn {
			t.Fatalf("txn %d: type %d", i, rec.Type)
		}
		if !reflect.DeepEqual(*rec.Txn, txns[i]) {
			t.Fatalf("txn %d round trip differs:\n want %+v\n got  %+v", i, txns[i], *rec.Txn)
		}
	}
}

// TestDecodeRecordHostile feeds truncations and bit flips of valid
// payloads to the decoder: it must return errors, never panic or
// allocate absurdly.
func TestDecodeRecordHostile(t *testing.T) {
	_, txns, err := workload.Generate(workload.Config{
		Tuples: 50, Pool: 10, Group: 2, Updates: 40,
		QueriesPerTxn: 3, MergeRatio: 0.3, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	for i := range txns {
		payload := encodeTxn(&txns[i])
		for cut := 0; cut < len(payload); cut += 1 + len(payload)/17 {
			_, _ = decodeRecord(payload[:cut])
		}
		for trial := 0; trial < 32; trial++ {
			mut := append([]byte(nil), payload...)
			mut[r.Intn(len(mut))] ^= byte(1 << r.Intn(8))
			_, _ = decodeRecord(mut)
		}
	}
}

// TestScanSegmentClassification checks the torn-vs-mid-log rules on
// hand-built segment images.
func TestScanSegmentClassification(t *testing.T) {
	recA := encodeTxn(&db.Transaction{Label: "a"})
	recB := encodeTxn(&db.Transaction{Label: "b"})
	recC := encodeTxn(&db.Transaction{Label: "c"})
	full := appendFrame(appendFrame(appendFrame(nil, recA), recB), recC)
	oneLen := int64(len(appendFrame(nil, recA)))

	t.Run("clean", func(t *testing.T) {
		sc := scanSegment(full)
		if sc.torn || sc.midlog || len(sc.records) != 3 || sc.goodLen != int64(len(full)) {
			t.Fatalf("clean scan: %+v", sc)
		}
	})
	t.Run("short-header", func(t *testing.T) {
		sc := scanSegment(full[:oneLen+3])
		if !sc.torn || sc.midlog || len(sc.records) != 1 {
			t.Fatalf("short header: %+v", sc)
		}
	})
	t.Run("short-payload", func(t *testing.T) {
		sc := scanSegment(full[:2*oneLen-2])
		if !sc.torn || sc.midlog || len(sc.records) != 1 || sc.goodLen != oneLen {
			t.Fatalf("short payload: %+v", sc)
		}
	})
	t.Run("crc-bad-final", func(t *testing.T) {
		img := append([]byte(nil), full...)
		img[len(img)-1] ^= 0xff
		sc := scanSegment(img)
		if !sc.torn || sc.midlog || len(sc.records) != 2 {
			t.Fatalf("crc-bad final: %+v", sc)
		}
	})
	t.Run("crc-bad-midlog", func(t *testing.T) {
		img := append([]byte(nil), full...)
		img[oneLen+frameHeaderSize] ^= 0xff // corrupt record B's payload
		sc := scanSegment(img)
		if !sc.midlog || len(sc.records) != 1 {
			t.Fatalf("crc-bad mid-log: %+v", sc)
		}
	})
}
