package wal_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hyperprov/internal/engine"
	"hyperprov/internal/wal"
	"hyperprov/internal/workload"
)

// applyN opens a store in dir with the given options, applies txns and
// returns it.
func applyN(t *testing.T, dir string, n int, opts ...wal.Option) *wal.Store {
	t.Helper()
	initial, txns := smallWorkload(t)
	base := []wal.Option{
		wal.WithMode(engine.ModeNormalForm),
		wal.WithInitialDatabase(initial),
		wal.WithSegmentSize(2048),
	}
	st, err := wal.Open(dir, append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.ApplyAll(context.Background(), txns[:n]); err != nil {
		t.Fatal(err)
	}
	return st
}

func dataFiles(t *testing.T, dir, substr string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if strings.Contains(e.Name(), substr) {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	return out
}

// TestOpenEmptyDir bootstraps from a schema alone: no checkpoint is
// written, and a reopen recovers a zero-row engine from the WAL alone.
func TestOpenEmptyDir(t *testing.T) {
	dir := t.TempDir()
	st, err := wal.Open(dir, wal.WithSchema(workload.Schema()))
	if err != nil {
		t.Fatal(err)
	}
	if st.NumRows() != 0 {
		t.Fatalf("bootstrap from schema has %d rows", st.NumRows())
	}
	if got := dataFiles(t, dir, "checkpoint-"); len(got) != 0 {
		t.Fatalf("empty bootstrap wrote checkpoints: %v", got)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := wal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.NumRows() != 0 {
		t.Fatalf("reopened empty store has %d rows", re.NumRows())
	}
}

// TestOpenNeedsSchema rejects bootstrapping a fresh directory without a
// schema or initial database.
func TestOpenNeedsSchema(t *testing.T) {
	if _, err := wal.Open(t.TempDir()); err == nil {
		t.Fatal("open of fresh dir without schema succeeded")
	}
}

// TestCheckpointOnlyRecovery recovers from a checkpoint with an empty
// log suffix: nothing replays.
func TestCheckpointOnlyRecovery(t *testing.T) {
	dir := t.TempDir()
	st := applyN(t, dir, 30)
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := snapshotOf(t, st)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := wal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	stats := re.Stats()
	if stats.Replayed != 0 {
		t.Fatalf("checkpoint-only recovery replayed %d records", stats.Replayed)
	}
	requireSameBytes(t, "checkpoint-only", want, snapshotOf(t, re))
}

// TestWALOnlyRecovery recovers purely from the log: a schema bootstrap
// never checkpoints, so every record replays.
func TestWALOnlyRecovery(t *testing.T) {
	dir := t.TempDir()
	initial, txns := smallWorkload(t)
	_ = initial
	st, err := wal.Open(dir, wal.WithSchema(workload.Schema()), wal.WithSegmentSize(2048))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.ApplyAll(context.Background(), txns[:40]); err != nil {
		t.Fatal(err)
	}
	want := snapshotOf(t, st)
	st.Crash()
	re, err := wal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Stats().Replayed; got != 40 {
		t.Fatalf("replayed %d records, want 40", got)
	}
	requireSameBytes(t, "wal-only", want, snapshotOf(t, re))
}

// TestTornFinalRecord appends garbage half-frames to the final segment:
// recovery truncates them and keeps everything before.
func TestTornFinalRecord(t *testing.T) {
	for _, garbage := range [][]byte{
		{0x03},                             // short header
		{0x10, 0, 0, 0, 0xde, 0xad, 0xbe},  // header only, payload missing
		{16, 0, 0, 0, 1, 2, 3, 4, 9, 9, 9}, // header + short payload
	} {
		dir := t.TempDir()
		st := applyN(t, dir, 25)
		want := snapshotOf(t, st)
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		segs := dataFiles(t, dir, "wal-")
		last := segs[len(segs)-1]
		f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(garbage); err != nil {
			t.Fatal(err)
		}
		f.Close()

		re, err := wal.Open(dir)
		if err != nil {
			t.Fatalf("reopen with torn tail: %v", err)
		}
		stats := re.Stats()
		if stats.TruncatedTail == 0 {
			t.Fatalf("torn tail not truncated: %+v", stats)
		}
		requireSameBytes(t, "torn tail", want, snapshotOf(t, re))
		if got := int(stats.LSN); got != 25 {
			t.Fatalf("recovered LSN %d, want 25", got)
		}
		re.Close()
	}
}

// TestCorruptMidLogRecord flips a byte in an early record of the final
// segment: intact records follow it, so recovery must refuse with
// ErrCorrupt rather than silently skip acknowledged history.
func TestCorruptMidLogRecord(t *testing.T) {
	dir := t.TempDir()
	st := applyN(t, dir, 25)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	segs := dataFiles(t, dir, "wal-")
	last := segs[len(segs)-1]
	data, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 32 {
		t.Fatalf("final segment too small to corrupt: %d bytes", len(data))
	}
	data[10] ^= 0xff // inside the first record's payload
	if err := os.WriteFile(last, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = wal.Open(dir)
	if !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("open over mid-log corruption: err = %v, want ErrCorrupt", err)
	}
}

// TestCorruptNonFinalSegment damages the tail of a non-final segment:
// hard error, never truncation.
func TestCorruptNonFinalSegment(t *testing.T) {
	dir := t.TempDir()
	st := applyN(t, dir, 60) // small segments: several rotations
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	segs := dataFiles(t, dir, "wal-")
	if len(segs) < 2 {
		t.Fatalf("want several segments, got %v", segs)
	}
	first := segs[0]
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(first, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = wal.Open(dir)
	if !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("open over damaged non-final segment: err = %v, want ErrCorrupt", err)
	}
}

// TestMissingSegment removes a middle segment: the chain is broken and
// recovery must refuse.
func TestMissingSegment(t *testing.T) {
	dir := t.TempDir()
	st := applyN(t, dir, 60)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	segs := dataFiles(t, dir, "wal-")
	if len(segs) < 3 {
		t.Fatalf("want ≥3 segments, got %v", segs)
	}
	if err := os.Remove(segs[1]); err != nil {
		t.Fatal(err)
	}
	_, err := wal.Open(dir)
	if !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("open with missing segment: err = %v, want ErrCorrupt", err)
	}
}

// TestCheckpointNewerThanWAL deletes the (empty) post-checkpoint
// segment: the checkpoint alone covers every acknowledged record, so
// the store opens and starts a fresh log at the checkpoint LSN.
func TestCheckpointNewerThanWAL(t *testing.T) {
	dir := t.TempDir()
	st := applyN(t, dir, 30)
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := snapshotOf(t, st)
	lsn := st.Stats().LSN
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	for _, seg := range dataFiles(t, dir, "wal-") {
		if err := os.Remove(seg); err != nil {
			t.Fatal(err)
		}
	}
	re, err := wal.Open(dir)
	if err != nil {
		t.Fatalf("reopen with checkpoint newer than WAL: %v", err)
	}
	defer re.Close()
	if got := re.Stats().LSN; got != lsn {
		t.Fatalf("LSN %d, want %d", got, lsn)
	}
	requireSameBytes(t, "ckpt-newer", want, snapshotOf(t, re))
}

// TestMissingInitialCheckpoint deletes the checkpoint of a store whose
// bootstrap had rows: recovery must refuse (the initial data is gone),
// not silently return an empty database.
func TestMissingInitialCheckpoint(t *testing.T) {
	dir := t.TempDir()
	st := applyN(t, dir, 10)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	for _, ckpt := range dataFiles(t, dir, "checkpoint-") {
		if err := os.Remove(ckpt); err != nil {
			t.Fatal(err)
		}
	}
	_, err := wal.Open(dir)
	if !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("open without the initial checkpoint: err = %v, want ErrCorrupt", err)
	}
}

// TestCorruptCheckpoint bit-flips the newest checkpoint: recovery must
// refuse rather than load garbage (older coverage was pruned).
func TestCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	st := applyN(t, dir, 30)
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	ckpts := dataFiles(t, dir, "checkpoint-")
	if len(ckpts) != 1 {
		t.Fatalf("want one checkpoint, got %v", ckpts)
	}
	data, err := os.ReadFile(ckpts[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(ckpts[0], data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = wal.Open(dir)
	if !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("open over corrupt checkpoint: err = %v, want ErrCorrupt", err)
	}
}

// TestDoubleOpenLocked refuses a second concurrent open; the lock
// releases on Close and on Crash.
func TestDoubleOpenLocked(t *testing.T) {
	dir := t.TempDir()
	st := applyN(t, dir, 5)
	_, err := wal.Open(dir)
	if !errors.Is(err, wal.ErrLocked) {
		t.Fatalf("second open: err = %v, want ErrLocked", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := wal.Open(dir)
	if err != nil {
		t.Fatalf("open after close: %v", err)
	}
	re.Crash()
	re2, err := wal.Open(dir)
	if err != nil {
		t.Fatalf("open after crash: %v", err)
	}
	re2.Close()
}

// TestForeignDirRejected refuses to bootstrap over a directory that has
// store files but no META.
func TestForeignDirRejected(t *testing.T) {
	dir := t.TempDir()
	st := applyN(t, dir, 5)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "META")); err != nil {
		t.Fatal(err)
	}
	_, err := wal.Open(dir, wal.WithSchema(workload.Schema()))
	if !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("bootstrap over half-deleted store: err = %v, want ErrCorrupt", err)
	}
}

// TestWritesAfterCloseFail checks the ErrClosed surface.
func TestWritesAfterCloseFail(t *testing.T) {
	dir := t.TempDir()
	st := applyN(t, dir, 5)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	_, txns := smallWorkload(t)
	if err := st.ApplyTransaction(&txns[0]); !errors.Is(err, wal.ErrClosed) {
		t.Fatalf("apply after close: err = %v, want ErrClosed", err)
	}
	if err := st.Checkpoint(); !errors.Is(err, wal.ErrClosed) {
		t.Fatalf("checkpoint after close: err = %v, want ErrClosed", err)
	}
}
