package wal_test

import (
	"context"
	"errors"
	"io"
	"sync/atomic"
	"testing"
	"time"

	"hyperprov/internal/engine"
	"hyperprov/internal/iofault"
	"hyperprov/internal/wal"
	"hyperprov/internal/workload"
)

// damageMode says how damagedSource hurts the first connection.
type damageMode int

const (
	// cutAfter drops the connection after N bytes — mid-frame it is a
	// torn frame, on a boundary a clean EOF; the follower must treat
	// both as a disconnect and resume.
	cutAfter damageMode = iota
	// flipAfter flips one bit at byte N — the framed CRC must catch it
	// and the follower must drop the session before applying the frame.
	flipAfter
)

func (m damageMode) String() string {
	if m == cutAfter {
		return "cut"
	}
	return "flip"
}

// damagedSource wraps a StreamSource so that the FIRST connection is
// damaged at byte offset n; every later dial passes through clean, so
// the follower's reconnect logic gets a fair chance to converge.
func damagedSource(src wal.StreamSource, mode damageMode, n int) (wal.StreamSource, *atomic.Bool) {
	var used, tripped atomic.Bool
	wrapped := func(ctx context.Context, from uint64) (io.ReadCloser, error) {
		rc, err := src(ctx, from)
		if err != nil || !used.CompareAndSwap(false, true) {
			return rc, err
		}
		return &damagedReader{rc: rc, mode: mode, left: n, tripped: &tripped}, nil
	}
	return wrapped, &tripped
}

type damagedReader struct {
	rc      io.ReadCloser
	mode    damageMode
	left    int // bytes until the damage point
	tripped *atomic.Bool
}

func (d *damagedReader) Read(p []byte) (int, error) {
	if d.mode == cutAfter {
		if d.left <= 0 {
			d.tripped.Store(true)
			return 0, io.EOF
		}
		if len(p) > d.left {
			p = p[:d.left]
		}
		n, err := d.rc.Read(p)
		d.left -= n
		return n, err
	}
	n, err := d.rc.Read(p)
	if d.left < n {
		if d.left >= 0 {
			p[d.left] ^= 0x40
			d.tripped.Store(true)
		}
		d.left = -1
	} else {
		d.left -= n
	}
	return n, err
}

func (d *damagedReader) Close() error { return d.rc.Close() }

// TestReplicationStreamDamage sweeps torn and bit-flipped replication
// streams across byte offsets that land in the handshake, the shipped
// checkpoint, and the record stream. Whatever breaks, the follower may
// never apply a damaged frame; it must reconnect and converge to
// byte-identical state.
func TestReplicationStreamDamage(t *testing.T) {
	initial, txns, err := tinyWorkload()
	if err != nil {
		t.Fatal(err)
	}
	st, err := wal.Open(t.TempDir(),
		wal.WithMode(engine.ModeNormalForm),
		wal.WithInitialDatabase(initial),
		wal.WithSync(wal.SyncNever),
		wal.WithSegmentSize(2048),
		wal.WithHeartbeatEvery(10*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.ApplyAll(context.Background(), txns); err != nil {
		t.Fatal(err)
	}
	want := snapshotOf(t, st)
	_, src := startLeaderServer(t, st)

	for _, mode := range []damageMode{cutAfter, flipAfter} {
		// Offsets chosen to land inside the hello, inside the checkpoint
		// bootstrap (it is tens of KB), and around record frames.
		for _, off := range []int{0, 1, 7, 64, 300, 4 << 10, 40 << 10, 200 << 10} {
			t.Run(mode.String()+"/"+itoa(off), func(t *testing.T) {
				bad, tripped := damagedSource(src, mode, off)
				f := openTestFollower(t, t.TempDir(), bad, wal.WithSync(wal.SyncNever))
				waitApplied(t, f, uint64(len(txns)))
				requireSameBytes(t, "after damage", want, snapshotOf(t, f))
				requireSameReads(t, "after damage", st, f)
				if tripped.Load() {
					if rs := f.ReplicaStats(); rs.Reconnects == 0 {
						t.Fatalf("damage tripped but follower never reconnected: %+v", rs)
					}
				}
			})
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// TestApplyBatchPrefixReplication is the applied-prefix convergence
// test: the leader dies mid-batch (an injected fsync failure fails the
// batch's second group commit), and the follower must converge to
// exactly the durably-applied prefix the leader acknowledged — never a
// record beyond it — and then, after the leader crash-recovers (which
// may legitimately extend the durable prefix with flushed-but-unacked
// records), to exactly the recovered prefix.
func TestApplyBatchPrefixReplication(t *testing.T) {
	// > 256 updates so ApplyBatch spans two group commits and the
	// injected failure lands mid-batch with a nonzero applied prefix.
	initial, txns, err := workload.Generate(workload.Config{
		Tuples: 120, Pool: 16, Group: 2, Updates: 320,
		QueriesPerTxn: 1, MergeRatio: 0.2, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	fs := iofault.Wrap(wal.OSFS{})
	ldir := t.TempDir()
	st, err := wal.Open(ldir,
		wal.WithMode(engine.ModeNormalForm),
		wal.WithInitialDatabase(initial),
		wal.WithFS(fs),
		wal.WithSync(wal.SyncAlways),
		wal.WithHeartbeatEvery(10*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	lp, src := startLeaderServer(t, st)

	if err := st.ApplyAll(context.Background(), txns[:10]); err != nil {
		t.Fatal(err)
	}
	f := openTestFollower(t, t.TempDir(), src, wal.WithSync(wal.SyncNever))
	waitApplied(t, f, 10)

	// The first group commit (256 txns) succeeds, the second fsync fails:
	// the batch reports applied=256 and the store degrades read-only.
	fs.Inject(iofault.Fault{Op: iofault.OpSync, Match: "wal-", Nth: 2, Mode: iofault.Fail})
	applied, err := st.ApplyBatch(context.Background(), txns[10:])
	if err == nil {
		t.Fatal("ApplyBatch succeeded past an injected fsync failure")
	}
	if !errors.Is(err, wal.ErrReadOnly) || !errors.Is(err, iofault.ErrInjected) {
		t.Fatalf("batch error = %v, want ErrReadOnly wrapping the injected fault", err)
	}
	if applied != 256 {
		t.Fatalf("applied prefix = %d, want 256 (one full group commit)", applied)
	}
	durable := st.Stats().LSN
	if durable != uint64(10+applied) {
		t.Fatalf("leader LSN %d, want %d", durable, 10+applied)
	}

	// The follower converges to the acknowledged prefix — and stays
	// there: heartbeats keep arriving from the degraded leader, but no
	// record past the prefix may ever be streamed.
	waitApplied(t, f, durable)
	time.Sleep(50 * time.Millisecond)
	if got := f.ReplicaStats().AppliedLSN; got != durable {
		t.Fatalf("follower at LSN %d, durable prefix is %d", got, durable)
	}
	oracle := oracleAt(t, engine.ModeNormalForm, initial, txns, 10+applied)
	requireSameBytes(t, "acked prefix", snapshotOf(t, oracle), snapshotOf(t, f))

	// Kill the degraded leader and crash-recover it. Records of the
	// failed commit that reached the OS before the fsync failure may
	// survive, so the recovered prefix is >= the acked one; the follower
	// must resume incrementally and land on exactly that prefix.
	st.Crash()
	re, err := wal.Open(ldir, wal.WithSync(wal.SyncAlways))
	if err != nil {
		t.Fatalf("leader recovery: %v", err)
	}
	defer re.Close()
	recovered := re.Stats().LSN
	if recovered < durable || recovered > uint64(len(txns)) {
		t.Fatalf("recovered LSN %d outside [%d, %d]", recovered, durable, len(txns))
	}
	lp.st.Store(re)
	waitApplied(t, f, recovered)
	time.Sleep(50 * time.Millisecond)
	if got := f.ReplicaStats().AppliedLSN; got != recovered {
		t.Fatalf("follower at LSN %d after leader recovery, want %d", got, recovered)
	}
	oracle = oracleAt(t, engine.ModeNormalForm, initial, txns, int(recovered))
	requireSameBytes(t, "recovered prefix", snapshotOf(t, oracle), snapshotOf(t, f))
	requireSameBytes(t, "leader/follower", snapshotOf(t, re), snapshotOf(t, f))
}

// TestFollowerCrashRecovery restarts a follower uncleanly (Crash, no
// Close) and verifies the reopened follower recovers its local prefix
// like any store — then resumes replication and converges. The local
// dir is also promotable: wal.Open on it must recover the same state.
func TestFollowerCrashRecovery(t *testing.T) {
	initial, txns := smallWorkload(t)
	st, err := wal.Open(t.TempDir(),
		wal.WithMode(engine.ModeNormalForm),
		wal.WithInitialDatabase(initial),
		wal.WithSync(wal.SyncNever),
		wal.WithHeartbeatEvery(10*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	_, src := startLeaderServer(t, st)
	half := len(txns) / 2
	if err := st.ApplyAll(context.Background(), txns[:half]); err != nil {
		t.Fatal(err)
	}

	fdir := t.TempDir()
	f := openTestFollower(t, fdir, src, wal.WithSync(wal.SyncAlways))
	waitApplied(t, f, uint64(half))
	// Simulate a follower process crash: tear down the local store
	// without syncing or releasing gracefully. With SyncAlways every
	// applied record is already durable.
	f.Crash()

	// Promotability: the follower dir recovers under plain wal.Open.
	pr, err := wal.Open(fdir)
	if err != nil {
		t.Fatalf("promote follower dir: %v", err)
	}
	plsn := pr.Stats().LSN
	if plsn != uint64(half) {
		t.Fatalf("promoted LSN %d, want %d (SyncAlways follower)", plsn, half)
	}
	oracle := oracleAt(t, engine.ModeNormalForm, initial, txns, int(plsn))
	requireSameBytes(t, "promoted dir", snapshotOf(t, oracle), snapshotOf(t, pr))
	pr.Crash()

	// Leader moves on; a reopened follower resumes and converges.
	for i := half; i < len(txns); i++ {
		if err := st.ApplyTransaction(&txns[i]); err != nil {
			t.Fatal(err)
		}
	}
	re := openTestFollower(t, fdir, src, wal.WithSync(wal.SyncNever))
	waitApplied(t, re, uint64(len(txns)))
	if rs := re.ReplicaStats(); rs.Resyncs != 0 {
		t.Fatalf("crash-recovered follower resynced %d times; want incremental resume", rs.Resyncs)
	}
	requireSameBytes(t, "after crash recovery", snapshotOf(t, st), snapshotOf(t, re))
}
