package wal

import (
	"io"
	"os"
	"path/filepath"
)

// File is the writable-file surface the log and checkpoint writers
// need. *os.File satisfies it; the iofault package wraps it to inject
// write/sync failures.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS abstracts the filesystem operations of the durability subsystem so
// tests can inject faults deterministically (package iofault). The
// default implementation is the real filesystem (OSFS).
type FS interface {
	MkdirAll(path string) error
	// Create opens name for writing, truncating any existing file.
	Create(name string) (File, error)
	// OpenAppend opens name for appending, creating it if absent.
	OpenAppend(name string) (File, error)
	ReadFile(name string) ([]byte, error)
	// ReadDir lists the names (not paths) of the directory entries.
	ReadDir(dir string) ([]string, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Truncate(name string, size int64) error
	// SyncDir fsyncs the directory itself, making renames and removals
	// durable.
	SyncDir(dir string) error
}

// OSFS is the real filesystem.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(path string) error { return os.MkdirAll(path, 0o755) }

// Create implements FS.
func (OSFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
}

// OpenAppend implements FS.
func (OSFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// ReadFile implements FS.
func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// ReadDir implements FS.
func (OSFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names, nil
}

// Rename implements FS.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// Truncate implements FS.
func (OSFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// SyncDir implements FS.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
