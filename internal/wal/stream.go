package wal

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"net/url"

	"hyperprov/internal/db"
	"hyperprov/internal/engine"
)

// Replication stream protocol.
//
// A follower connects with the LSN it wants to resume from; the leader
// answers with a framed message stream over any byte transport (HTTP
// in production, an in-process pipe in tests). Messages reuse the WAL
// frame layout — | length u32 LE | CRC32C u32 LE | payload | — so the
// same torn/corrupt classification applies; the first payload byte is
// the message type:
//
//	hello      version, resync flag, mode, target LSN, horizon, snapshot LSN, schema
//	ckptChunk  a slice of the bootstrap checkpoint (resync only)
//	ckptDone   end of the bootstrap checkpoint
//	record     LSN + one WAL record payload, exactly the leader's bytes
//	heartbeat  leader LSN + committed horizon, sent when idle
//
// The hello message always comes first. With resync=0 the leader
// resumes records at exactly the follower's requested LSN; with
// resync=1 the requested suffix is no longer retained (pruned by a
// checkpoint, or the follower is ahead of a leader that lost its tail)
// and the leader instead ships its newest checkpoint followed by the
// records after it — the follower discards local state and reloads.
const (
	streamVersion byte = 1

	msgHello     byte = 1
	msgCkptChunk byte = 2
	msgCkptDone  byte = 3
	msgRecord    byte = 4
	msgHeartbeat byte = 5
)

// ckptChunkSize slices the bootstrap checkpoint into frames small
// enough to interleave progress and keep per-frame buffers modest.
const ckptChunkSize = 256 << 10

// ErrStreamCorrupt reports a replication frame that failed its CRC or
// decoded to garbage. Followers treat it like a dropped connection:
// resume from the last durably applied LSN.
var ErrStreamCorrupt = errors.New("wal: replication stream is corrupt")

// helloMsg is the decoded handshake.
type helloMsg struct {
	resync  bool
	mode    engine.Mode
	target  uint64 // leader LSN at connect: the initial-sync goal
	horizon uint64 // leader's committed MVCC horizon at connect
	snapLSN uint64 // checkpoint LSN that follows (resync only)
	schema  *db.Schema
}

func encodeHello(h helloMsg) []byte {
	var e recEncoder
	e.byte(msgHello)
	e.byte(streamVersion)
	if h.resync {
		e.byte(1)
	} else {
		e.byte(0)
	}
	e.byte(byte(h.mode))
	e.uvarint(h.target)
	e.uvarint(h.horizon)
	e.uvarint(h.snapLSN)
	encodeSchema(&e, h.schema)
	return e.buf.Bytes()
}

func decodeHello(d *recDecoder) (helloMsg, error) {
	var h helloMsg
	ver, err := d.byte()
	if err != nil {
		return h, err
	}
	if ver != streamVersion {
		return h, fmt.Errorf("stream version %d, want %d", ver, streamVersion)
	}
	resync, err := d.byte()
	if err != nil {
		return h, err
	}
	h.resync = resync == 1
	mode, err := d.byte()
	if err != nil {
		return h, err
	}
	h.mode = engine.Mode(mode)
	if h.target, err = d.uvarint(); err != nil {
		return h, err
	}
	if h.horizon, err = d.uvarint(); err != nil {
		return h, err
	}
	if h.snapLSN, err = d.uvarint(); err != nil {
		return h, err
	}
	if h.schema, err = decodeSchema(d); err != nil {
		return h, err
	}
	return h, nil
}

func encodeStreamRecord(lsn uint64, payload []byte) []byte {
	var e recEncoder
	e.byte(msgRecord)
	e.uvarint(lsn)
	e.buf.Write(payload)
	return e.buf.Bytes()
}

func encodeHeartbeat(lsn, horizon uint64) []byte {
	var e recEncoder
	e.byte(msgHeartbeat)
	e.uvarint(lsn)
	e.uvarint(horizon)
	return e.buf.Bytes()
}

func encodeCkptDone(lsn uint64) []byte {
	var e recEncoder
	e.byte(msgCkptDone)
	e.uvarint(lsn)
	return e.buf.Bytes()
}

// frameWriter frames messages onto a transport, flushing after every
// message when the transport supports it (HTTP response streaming).
type frameWriter struct {
	w   io.Writer
	fl  http.Flusher
	buf []byte
}

func (fw *frameWriter) writeMsg(payload []byte) error {
	fw.buf = appendFrame(fw.buf[:0], payload)
	if _, err := fw.w.Write(fw.buf); err != nil {
		return err
	}
	if fw.fl != nil {
		fw.fl.Flush()
	}
	return nil
}

// frameReader reads CRC-checked frames off a transport. Any damage —
// short read, oversized length, CRC mismatch — is ErrStreamCorrupt;
// a clean EOF between frames is io.EOF.
type frameReader struct {
	r   *bufio.Reader
	hdr [frameHeaderSize]byte
}

func newFrameReader(r io.Reader) *frameReader {
	return &frameReader{r: bufio.NewReaderSize(r, 1<<16)}
}

func (fr *frameReader) readMsg() ([]byte, error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: truncated frame header: %v", ErrStreamCorrupt, err)
	}
	length := binary.LittleEndian.Uint32(fr.hdr[0:4])
	sum := binary.LittleEndian.Uint32(fr.hdr[4:8])
	if length > maxRecordLen {
		return nil, fmt.Errorf("%w: implausible frame length %d", ErrStreamCorrupt, length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		return nil, fmt.Errorf("%w: truncated frame payload: %v", ErrStreamCorrupt, err)
	}
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, fmt.Errorf("%w: frame CRC mismatch", ErrStreamCorrupt)
	}
	return payload, nil
}

// StreamSource opens one replication stream resuming at from — the
// follower's transport abstraction. Production followers use
// HTTPSource; tests wire the leader's ServeStream through an
// in-process pipe (optionally corrupting it) without a socket.
type StreamSource func(ctx context.Context, from uint64) (io.ReadCloser, error)

// HTTPSource is a StreamSource dialing a leader's replication endpoint
// (GET <base>/v1/replication/stream?from=N). client may be nil for
// http.DefaultClient; the request is expected to stream indefinitely,
// so the client must not set an overall timeout.
func HTTPSource(base string, client *http.Client) StreamSource {
	if client == nil {
		client = http.DefaultClient
	}
	return func(ctx context.Context, from uint64) (io.ReadCloser, error) {
		u, err := url.Parse(base)
		if err != nil {
			return nil, err
		}
		u.Path = "/v1/replication/stream"
		u.RawQuery = fmt.Sprintf("from=%d", from)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
		if err != nil {
			return nil, err
		}
		resp, err := client.Do(req)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			return nil, fmt.Errorf("wal: leader answered %s: %s", resp.Status, body)
		}
		return resp.Body, nil
	}
}
