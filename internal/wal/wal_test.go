package wal_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"hyperprov/internal/core"
	"hyperprov/internal/db"
	"hyperprov/internal/engine"
	"hyperprov/internal/provstore"
	"hyperprov/internal/tpcc"
	"hyperprov/internal/wal"
	"hyperprov/internal/workload"
)

var modes = []engine.Mode{engine.ModeNaive, engine.ModeNormalForm}

func modeName(m engine.Mode) string {
	if m == engine.ModeNaive {
		return "naive"
	}
	return "nf"
}

// smallWorkload is the shared differential workload: small enough to
// run hundreds of recoveries, large enough to cross segment and
// checkpoint boundaries.
func smallWorkload(t *testing.T) (*db.Database, []db.Transaction) {
	t.Helper()
	initial, txns, err := workload.Generate(workload.Config{
		Tuples: 300, Pool: 30, Group: 3, Updates: 150,
		QueriesPerTxn: 3, MergeRatio: 0.2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return initial, txns
}

// tinyWorkload is the fault-injection sweep workload: the sweep reruns
// it once per injection point, so it must be fast.
func tinyWorkload() (*db.Database, []db.Transaction, error) {
	return workload.Generate(workload.Config{
		Tuples: 120, Pool: 16, Group: 2, Updates: 60,
		QueriesPerTxn: 3, MergeRatio: 0.2, Seed: 13,
	})
}

func tpccWorkload(t *testing.T) (*db.Database, []db.Transaction) {
	t.Helper()
	g := tpcc.NewGenerator(tpcc.Scaled(0.01))
	initial, err := g.InitialDatabase()
	if err != nil {
		t.Fatal(err)
	}
	return initial, g.Transactions(60)
}

func snapshotOf(t *testing.T, e engine.DB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := provstore.SaveSnapshot(&buf, e); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// oracleAt replays txns[:n] on a fresh in-memory engine — the
// never-crashed reference every recovery is compared against.
func oracleAt(t *testing.T, mode engine.Mode, initial *db.Database, txns []db.Transaction, n int) engine.DB {
	t.Helper()
	e := engine.Open(mode, initial)
	if err := e.ApplyAll(context.Background(), txns[:n]); err != nil {
		t.Fatalf("oracle apply: %v", err)
	}
	return e
}

func requireSameBytes(t *testing.T, label string, want, got []byte) {
	t.Helper()
	if !bytes.Equal(want, got) {
		t.Fatalf("%s: snapshot bytes differ (want %d bytes, got %d)", label, len(want), len(got))
	}
}

// TestCrashRecoveryDifferential is the tentpole acceptance test: for
// random and TPC-C workloads, both modes, shard counts 1 and 8, a store
// crashed mid-workload recovers to exactly the state a never-crashed
// engine reaches with the recovered record prefix — byte-identical
// snapshots — and recovery is independent of the shard count it reopens
// with.
func TestCrashRecoveryDifferential(t *testing.T) {
	type load struct {
		name string
		gen  func(t *testing.T) (*db.Database, []db.Transaction)
	}
	loads := []load{{"random", smallWorkload}, {"tpcc", tpccWorkload}}
	for _, ld := range loads {
		for _, mode := range modes {
			for _, shards := range []int{1, 8} {
				name := fmt.Sprintf("%s/%s/shards=%d", ld.name, modeName(mode), shards)
				t.Run(name, func(t *testing.T) {
					initial, txns := ld.gen(t)
					dir := t.TempDir()
					open := func(sh int) *wal.Store {
						st, err := wal.Open(dir,
							wal.WithMode(mode),
							wal.WithInitialDatabase(initial),
							wal.WithEngineOptions(engine.WithShards(sh)),
							wal.WithSync(wal.SyncAlways),
							wal.WithSegmentSize(4096),
							wal.WithCheckpointEvery(40),
						)
						if err != nil {
							t.Fatalf("open: %v", err)
						}
						return st
					}
					st := open(shards)
					// First half through the batched path, then a crash
					// mid-way through the sequential path.
					half := len(txns) / 2
					if err := st.ApplyAll(context.Background(), txns[:half]); err != nil {
						t.Fatalf("ApplyAll: %v", err)
					}
					crashAt := half + (len(txns)-half)/2
					for i := half; i < crashAt; i++ {
						if err := st.ApplyTransaction(&txns[i]); err != nil {
							t.Fatalf("ApplyTransaction %d: %v", i, err)
						}
					}
					st.Crash()

					// Reopen with the opposite shard count: log and
					// snapshot bytes are engine-shape independent.
					for _, reShards := range []int{shards, 9 - shards} {
						re, err := wal.Open(dir,
							wal.WithEngineOptions(engine.WithShards(reShards)),
							wal.WithSync(wal.SyncAlways),
							wal.WithSegmentSize(4096),
						)
						if err != nil {
							t.Fatalf("reopen shards=%d: %v", reShards, err)
						}
						stats := re.Stats()
						if got := int(stats.LSN); got != crashAt {
							t.Fatalf("recovered LSN %d, want %d acked records", got, crashAt)
						}
						if !stats.Recovered {
							t.Fatalf("stats.Recovered = false after recovery")
						}
						oracle := oracleAt(t, mode, initial, txns, crashAt)
						requireSameBytes(t, fmt.Sprintf("reopen shards=%d", reShards),
							snapshotOf(t, oracle), snapshotOf(t, re))
						re.Crash()
					}

					// Continue past the crash on a final reopen, close
					// cleanly, reopen once more: checkpoint + suffix.
					re := open(shards)
					for i := crashAt; i < len(txns); i++ {
						if err := re.ApplyTransaction(&txns[i]); err != nil {
							t.Fatalf("ApplyTransaction %d after recovery: %v", i, err)
						}
					}
					if err := re.Close(); err != nil {
						t.Fatalf("close: %v", err)
					}
					final := open(shards)
					defer final.Close()
					oracle := oracleAt(t, mode, initial, txns, len(txns))
					requireSameBytes(t, "final", snapshotOf(t, oracle), snapshotOf(t, final))
				})
			}
		}
	}
}

// TestSyncPolicies exercises interval and never policies: a clean Close
// flushes everything regardless of policy, and a crash loses only a
// suffix — the recovered LSN is a prefix length and the state matches
// the oracle at that prefix.
func TestSyncPolicies(t *testing.T) {
	initial, txns := smallWorkload(t)
	for _, policy := range []wal.SyncPolicy{wal.SyncInterval, wal.SyncNever} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			st, err := wal.Open(dir,
				wal.WithMode(engine.ModeNormalForm),
				wal.WithInitialDatabase(initial),
				wal.WithSync(policy),
				wal.WithSyncInterval(5e6), // 5ms
				wal.WithSegmentSize(4096),
			)
			if err != nil {
				t.Fatal(err)
			}
			crashAt := len(txns) / 2
			for i := 0; i < crashAt; i++ {
				if err := st.ApplyTransaction(&txns[i]); err != nil {
					t.Fatal(err)
				}
			}
			st.Crash()
			re, err := wal.Open(dir)
			if err != nil {
				t.Fatalf("reopen after crash: %v", err)
			}
			lsn := int(re.Stats().LSN)
			if lsn > crashAt {
				t.Fatalf("recovered %d records, only %d were written", lsn, crashAt)
			}
			oracle := oracleAt(t, engine.ModeNormalForm, initial, txns, lsn)
			requireSameBytes(t, "crash prefix", snapshotOf(t, oracle), snapshotOf(t, re))

			// Clean close from here must lose nothing.
			for i := lsn; i < len(txns); i++ {
				if err := re.ApplyTransaction(&txns[i]); err != nil {
					t.Fatal(err)
				}
			}
			if err := re.Close(); err != nil {
				t.Fatal(err)
			}
			final, err := wal.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer final.Close()
			if got := int(final.Stats().LSN); got != len(txns) {
				t.Fatalf("after clean close recovered %d records, want %d", got, len(txns))
			}
			oracle = oracleAt(t, engine.ModeNormalForm, initial, txns, len(txns))
			requireSameBytes(t, "clean close", snapshotOf(t, oracle), snapshotOf(t, final))
		})
	}
}

// TestDurableMinimizeAndIndexes covers the non-transaction records:
// minimize passes change snapshot bytes and must replay; index builds
// must survive recovery.
func TestDurableMinimizeAndIndexes(t *testing.T) {
	initial, txns := smallWorkload(t)
	dir := t.TempDir()
	st, err := wal.Open(dir,
		wal.WithMode(engine.ModeNormalForm),
		wal.WithInitialDatabase(initial),
	)
	if err != nil {
		t.Fatal(err)
	}
	n1, n2 := len(txns)/2, len(txns)*3/4
	if err := st.ApplyAll(context.Background(), txns[:n1]); err != nil {
		t.Fatal(err)
	}
	if _, err := st.MinimizeAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := st.BuildIndex("R", "grp"); err != nil {
		t.Fatal(err)
	}
	if err := st.ApplyAll(context.Background(), txns[n1:n2]); err != nil {
		t.Fatal(err)
	}
	st.Crash()

	re, err := wal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	oracle := engine.Open(engine.ModeNormalForm, initial)
	if err := oracle.ApplyAll(context.Background(), txns[:n1]); err != nil {
		t.Fatal(err)
	}
	if _, err := oracle.MinimizeAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := oracle.BuildIndex("R", "grp"); err != nil {
		t.Fatal(err)
	}
	if err := oracle.ApplyAll(context.Background(), txns[n1:n2]); err != nil {
		t.Fatal(err)
	}
	requireSameBytes(t, "minimize+index", snapshotOf(t, oracle), snapshotOf(t, re))
	infos := re.IndexStats()
	if len(infos) != 1 {
		t.Fatalf("recovered %d indexes, want 1", len(infos))
	}
}

// TestDurableRestoreRow checks the restore-row record round-trips the
// annotation through the expression codec.
func TestDurableRestoreRow(t *testing.T) {
	initial, txns := smallWorkload(t)
	dir := t.TempDir()
	st, err := wal.Open(dir,
		wal.WithMode(engine.ModeNormalForm),
		wal.WithInitialDatabase(initial),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.ApplyAll(context.Background(), txns[:20]); err != nil {
		t.Fatal(err)
	}
	// Grab a live row's annotation, perturb the row via restore.
	var rel string
	var tup db.Tuple
	var ann *core.Expr
	st.Rows(func(r string, tu db.Tuple, a *core.Expr) {
		if rel == "" {
			rel, tup, ann = r, tu, a
		}
	})
	if rel == "" {
		t.Fatal("no rows")
	}
	if err := st.RestoreRow(rel, tup, ann); err != nil {
		t.Fatal(err)
	}
	// Invalid restores are delegated unlogged and return engine errors.
	if err := st.RestoreRow("nope", tup, ann); err == nil {
		t.Fatal("restore into unknown relation succeeded")
	}
	st.Crash()

	re, err := wal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	oracle := oracleAt(t, engine.ModeNormalForm, initial, txns, 20)
	if err := oracle.RestoreRow(rel, tup, ann); err != nil {
		t.Fatal(err)
	}
	requireSameBytes(t, "restore", snapshotOf(t, oracle), snapshotOf(t, re))
}

// TestApplyErrorsAreDeterministic logs transactions that fail mid-way
// (unknown relation on the second update) and checks the partial state
// replays identically, with the engine's error text passed through.
func TestApplyErrorsAreDeterministic(t *testing.T) {
	initial, txns := smallWorkload(t)
	dir := t.TempDir()
	st, err := wal.Open(dir,
		wal.WithMode(engine.ModeNormalForm),
		wal.WithInitialDatabase(initial),
	)
	if err != nil {
		t.Fatal(err)
	}
	bad := db.Transaction{Label: "bad", Updates: []db.Update{
		txns[0].Updates[0],
		{Kind: db.OpDelete, Rel: "missing", Sel: db.Pattern{db.AnyVar("x")}},
	}}
	if err := st.ApplyTransaction(&bad); err == nil {
		t.Fatal("transaction on unknown relation succeeded")
	}
	// Batched path: a chunk containing the bad transaction falls back
	// to sequential apply, stopping at the error like engine.ApplyAll.
	batch := []db.Transaction{txns[1], bad, txns[2]}
	if err := st.ApplyAll(context.Background(), batch); err == nil {
		t.Fatal("batch with unknown relation succeeded")
	}
	st.Crash()

	re, err := wal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	oracle := engine.Open(engine.ModeNormalForm, initial)
	_ = oracle.ApplyTransaction(&bad)
	_ = oracle.ApplyTransaction(&txns[1])
	_ = oracle.ApplyTransaction(&bad)
	requireSameBytes(t, "failed txns", snapshotOf(t, oracle), snapshotOf(t, re))
}
