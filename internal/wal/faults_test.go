package wal_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"testing"

	"hyperprov/internal/engine"
	"hyperprov/internal/iofault"
	"hyperprov/internal/wal"
)

// faultWorkload drives one store lifetime over the injected filesystem:
// bootstrap, batched and single applies, a manual checkpoint, more
// applies, close. It returns how many transactions were acknowledged
// (applied without error) and the first write-path error.
func faultWorkload(dir string, fs *iofault.FS) (acked int, firstErr error) {
	initial, txns, err := tinyWorkload()
	if err != nil {
		return 0, err
	}
	st, err := wal.Open(dir,
		wal.WithMode(engine.ModeNormalForm),
		wal.WithInitialDatabase(initial),
		wal.WithSegmentSize(2048),
		wal.WithCheckpointEvery(25),
		wal.WithFS(fs),
	)
	if err != nil {
		return 0, err
	}
	defer st.Close()
	record := func(err error) bool {
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return false
		}
		acked++
		return true
	}
	half := len(txns) / 2
	for i := 0; i < half; i += 8 {
		end := i + 8
		if end > half {
			end = half
		}
		if err := st.ApplyAll(context.Background(), txns[i:end]); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			// acked is unknowable for a failed batch: recompute below
			// from the store's own LSN, which never exceeds what the
			// engine applied.
			acked = int(st.Stats().LSN)
			return acked, firstErr
		}
		acked = end
	}
	if err := st.Checkpoint(); err != nil && firstErr == nil {
		firstErr = err
	}
	for i := half; i < len(txns); i++ {
		if !record(st.ApplyTransaction(&txns[i])) {
			break
		}
	}
	return acked, firstErr
}

// typedError reports whether err is one of the package's typed
// failures or the injected fault itself — the only errors the sweep
// accepts.
func typedError(err error) bool {
	return err == nil ||
		errors.Is(err, iofault.ErrInjected) ||
		errors.Is(err, wal.ErrReadOnly) ||
		errors.Is(err, wal.ErrCorrupt) ||
		errors.Is(err, wal.ErrClosed) ||
		os.IsNotExist(err)
}

// TestFaultInjectionSweep runs the workload once per possible injection
// point for every operation class and failure mode, requiring that
// every failure surfaces as a typed error or read-only degradation —
// no panics — and that a faultless reopen of the directory recovers a
// state containing every acknowledged transaction.
func TestFaultInjectionSweep(t *testing.T) {
	// Size the sweep with a fault-free run.
	baseDir := t.TempDir()
	counting := iofault.Wrap(wal.OSFS{})
	acked, err := faultWorkload(baseDir, counting)
	if err != nil {
		t.Fatalf("fault-free run errored: %v", err)
	}
	initial, txns, err := tinyWorkload()
	if err != nil {
		t.Fatal(err)
	}
	if acked != len(txns) {
		t.Fatalf("fault-free run acked %d of %d", acked, len(txns))
	}

	type class struct {
		op   iofault.Op
		mode iofault.Mode
	}
	classes := []class{
		{iofault.OpWrite, iofault.Fail},
		{iofault.OpWrite, iofault.ShortWrite},
		{iofault.OpWrite, iofault.Torn},
		{iofault.OpSync, iofault.Fail},
		{iofault.OpCreate, iofault.Fail},
		{iofault.OpRename, iofault.Fail},
		{iofault.OpSyncDir, iofault.Fail},
		{iofault.OpTruncate, iofault.Fail},
		{iofault.OpRemove, iofault.Fail},
		{iofault.OpReadFile, iofault.Fail},
	}
	for _, c := range classes {
		total := counting.Count(c.op)
		if total == 0 {
			continue
		}
		// Sweep a bounded, deterministic subset: every point for small
		// counts, a stride for large ones, always including first and
		// last.
		stride := 1
		if total > 40 {
			stride = total / 40
		}
		for nth := 1; nth <= total; nth += stride {
			name := fmt.Sprintf("%s/%d/nth=%d", c.op, c.mode, nth)
			t.Run(name, func(t *testing.T) {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic under fault %s: %v", name, r)
					}
				}()
				dir := t.TempDir()
				fs := iofault.Wrap(wal.OSFS{})
				fs.Inject(iofault.Fault{Op: c.op, Nth: nth, Mode: c.mode})
				acked, ferr := faultWorkload(dir, fs)
				if !typedError(ferr) {
					t.Fatalf("untyped error under fault: %v", ferr)
				}
				if !fs.Tripped() {
					// The fault point was past the workload's ops
					// (shorter run due to earlier behavior); fine.
					return
				}
				// Reopen faultlessly, with the bootstrap options in case
				// the faulted run never completed its bootstrap. Open
				// may fail only with a typed error; if it succeeds, the
				// recovered prefix must contain every acknowledged
				// transaction and match the oracle.
				re, err := wal.Open(dir,
					wal.WithMode(engine.ModeNormalForm),
					wal.WithInitialDatabase(initial),
				)
				if err != nil {
					if !typedError(err) {
						t.Fatalf("untyped reopen error: %v", err)
					}
					return
				}
				defer re.Close()
				lsn := int(re.Stats().LSN)
				if lsn < acked {
					t.Fatalf("silent loss: %d acked, %d recovered", acked, lsn)
				}
				if lsn > len(txns) {
					t.Fatalf("recovered %d records, only %d exist", lsn, len(txns))
				}
				oracle := oracleAt(t, engine.ModeNormalForm, initial, txns, lsn)
				requireSameBytes(t, "fault recovery", snapshotOf(t, oracle), snapshotOf(t, re))
			})
		}
	}
}

// TestReadOnlyDegradation pins the degradation contract: after an
// injected sync failure, the failing write returns the cause, later
// writes return ErrReadOnly, reads keep answering, and Close releases
// the lock.
func TestReadOnlyDegradation(t *testing.T) {
	initial, txns, err := tinyWorkload()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	fs := iofault.Wrap(wal.OSFS{})
	st, err := wal.Open(dir,
		wal.WithMode(engine.ModeNormalForm),
		wal.WithInitialDatabase(initial),
		wal.WithFS(fs),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.ApplyTransaction(&txns[0]); err != nil {
		t.Fatal(err)
	}
	fs.Inject(iofault.Fault{Op: iofault.OpSync, Match: "wal-", Nth: 1, Mode: iofault.Fail})
	err = st.ApplyTransaction(&txns[1])
	if !errors.Is(err, wal.ErrReadOnly) || !errors.Is(err, iofault.ErrInjected) {
		t.Fatalf("failing write: err = %v, want ErrReadOnly wrapping the injected cause", err)
	}
	if !st.ReadOnly() {
		t.Fatal("store did not degrade to read-only")
	}
	if err := st.ApplyTransaction(&txns[2]); !errors.Is(err, wal.ErrReadOnly) {
		t.Fatalf("write after degradation: err = %v, want ErrReadOnly", err)
	}
	if err := st.Checkpoint(); !errors.Is(err, wal.ErrReadOnly) {
		t.Fatalf("checkpoint after degradation: err = %v, want ErrReadOnly", err)
	}
	if _, err := st.MinimizeAll(context.Background()); !errors.Is(err, wal.ErrReadOnly) {
		t.Fatalf("minimize after degradation: err = %v, want ErrReadOnly", err)
	}
	// Reads still serve the in-memory state, which includes txns[0].
	if st.NumRows() == 0 {
		t.Fatal("reads failed after degradation")
	}
	stats := st.Stats()
	if !stats.ReadOnly || stats.ReadOnlyCause == "" {
		t.Fatalf("stats do not report degradation: %+v", stats)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// The acked prefix (txns[0]) must survive. The failed append's
	// record may survive too — it reached the OS before the fsync
	// failed — so the recovered LSN is 1 or 2, never 0, and the state
	// must match the oracle at whatever prefix recovered.
	re, err := wal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	lsn := int(re.Stats().LSN)
	if lsn < 1 || lsn > 2 {
		t.Fatalf("recovered LSN %d, want 1 or 2", lsn)
	}
	oracle := oracleAt(t, engine.ModeNormalForm, initial, txns, lsn)
	requireSameBytes(t, "degraded prefix", snapshotOf(t, oracle), snapshotOf(t, re))
}
