package wal_test

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"
	"time"

	"hyperprov/internal/engine"
	"hyperprov/internal/wal"
)

const tortureDirEnv = "HYPERPROV_WAL_TORTURE_DIR"

// TestCrashTortureChildProcess is the re-exec target of the torture
// harness: it opens (or recovers) the store in the directory named by
// the environment, continues the deterministic workload from the
// recovered LSN, and prints "ACK <n>" after every acknowledged
// transaction until it finishes or is SIGKILLed by the parent.
func TestCrashTortureChildProcess(t *testing.T) {
	dir := os.Getenv(tortureDirEnv)
	if dir == "" {
		t.Skip("torture child: run by TestCrashTorture")
	}
	initial, txns := smallWorkload(t)
	st, err := wal.Open(dir,
		wal.WithMode(engine.ModeNormalForm),
		wal.WithInitialDatabase(initial),
		wal.WithEngineOptions(engine.WithShards(4)),
		wal.WithSync(wal.SyncAlways),
		wal.WithSegmentSize(2048),
		wal.WithCheckpointEvery(23),
	)
	if err != nil {
		fmt.Printf("CHILD-ERR open: %v\n", err)
		t.Fatalf("open: %v", err)
	}
	start := int(st.Stats().LSN)
	fmt.Printf("RECOVERED %d\n", start)
	for i := start; i < len(txns); i++ {
		if err := st.ApplyTransaction(&txns[i]); err != nil {
			fmt.Printf("CHILD-ERR apply %d: %v\n", i, err)
			t.Fatalf("apply %d: %v", i, err)
		}
		fmt.Printf("ACK %d\n", i+1)
	}
	fmt.Println("DONE")
	// Exit without Close: the final round's parent verifies that even
	// an unclean exit after DONE loses nothing (everything is synced).
	st.Crash()
}

// TestCrashTorture repeatedly SIGKILLs a child process mid-workload,
// reopens the data directory, and verifies (a) every transaction the
// child acknowledged survived and (b) the recovered state is
// byte-identical to a never-crashed oracle at the recovered prefix.
// The final round lets the child finish and checks full equality.
func TestCrashTorture(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess torture test")
	}
	if os.Getenv(tortureDirEnv) != "" {
		t.Skip("already in torture child")
	}
	initial, txns := smallWorkload(t)
	dir := t.TempDir()

	lastAcked := 0
	for round := 0; round < 4; round++ {
		final := round == 3
		cmd := exec.Command(os.Args[0], "-test.run=TestCrashTortureChildProcess$", "-test.v")
		cmd.Env = append(os.Environ(), tortureDirEnv+"="+dir)
		out, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = cmd.Stdout
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		// Read acks; kill mid-stream on non-final rounds.
		killAfter := lastAcked + 10 + round*7
		sc := bufio.NewScanner(out)
		done := false
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "ACK "):
				n, err := strconv.Atoi(strings.TrimPrefix(line, "ACK "))
				if err != nil {
					t.Fatalf("bad ack line %q", line)
				}
				lastAcked = n
				if !final && n >= killAfter {
					_ = cmd.Process.Kill()
				}
			case strings.HasPrefix(line, "RECOVERED "):
				n, _ := strconv.Atoi(strings.TrimPrefix(line, "RECOVERED "))
				if n < lastAcked {
					t.Fatalf("round %d: child recovered %d, but %d were acked", round, n, lastAcked)
				}
			case line == "DONE":
				done = true
			case strings.HasPrefix(line, "CHILD-ERR"):
				t.Fatalf("round %d: %s", round, line)
			}
		}
		werr := cmd.Wait()
		if final {
			if !done {
				t.Fatalf("final round: child did not finish: %v", werr)
			}
			lastAcked = len(txns)
		}

		// Parent-side verification between rounds.
		st, err := wal.Open(dir, wal.WithEngineOptions(engine.WithShards(2)))
		if err != nil {
			t.Fatalf("round %d: parent reopen: %v", round, err)
		}
		lsn := int(st.Stats().LSN)
		if lsn < lastAcked {
			t.Fatalf("round %d: silent loss: child acked %d, parent recovered %d", round, lastAcked, lsn)
		}
		if lsn > len(txns) {
			t.Fatalf("round %d: recovered %d records, only %d exist", round, lsn, len(txns))
		}
		oracle := oracleAt(t, engine.ModeNormalForm, initial, txns, lsn)
		requireSameBytes(t, fmt.Sprintf("round %d", round), snapshotOf(t, oracle), snapshotOf(t, st))
		if err := st.Close(); err != nil {
			t.Fatalf("round %d: close: %v", round, err)
		}
		lastAcked = lsn
		if final {
			break
		}
		// Give the OS a beat to reap the child before relocking.
		time.Sleep(10 * time.Millisecond)
	}
}
