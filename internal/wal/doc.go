// Package wal is the durability subsystem: a segmented, checksummed
// write-ahead log plus checkpointing and crash recovery around either
// provenance engine.
//
// The paper makes durability cheap here: the Theorem 5.3 normal form is
// maintained incrementally per transaction (§5), so the log record for
// one applied transaction is just the transaction itself in a canonical
// binary encoding, and replay is exactly re-running ApplyTransaction —
// landing bit-identical annotations and snapshot bytes (the package's
// differential tests prove recovered state equals a never-crashed
// oracle byte for byte, for any shard count and either mode).
//
// Layout of a data directory:
//
//	META                     mode, schema, bootstrap flag (written once)
//	LOCK                     advisory lock, held while the store is open
//	wal-%016x.seg            log segments; the hex name is the LSN of the
//	                         segment's first record
//	checkpoint-%016x.ckpt    provstore snapshots; the hex name is the LSN
//	                         the checkpoint covers (records < LSN are in it)
//
// Every log record is framed as
//
//	| length uint32 LE | CRC32C uint32 LE | payload |
//
// where the CRC covers the payload. Appends go through a configurable
// sync policy (always | interval | never); batched applies group-commit
// a whole chunk under a single fsync. Checkpoints are written to a temp
// file, fsynced, and atomically renamed; log segments wholly covered by
// a successful checkpoint are deleted.
//
// Recovery on Open loads the newest loadable checkpoint and replays the
// log suffix, stopping cleanly at the first damaged record: damage at
// the tail of the final segment (a torn or short write from the crash)
// is truncated away, while damage in the middle of the log — a corrupt
// record with intact records after it, or a broken segment chain — is a
// hard ErrCorrupt, because silently skipping it would replay a
// different history than the one that was acknowledged.
//
// After a persistent append/fsync failure the store degrades to
// read-only instead of crashing: writes fail fast with ErrReadOnly
// (which the HTTP layer maps to a typed 503 envelope) while reads keep
// serving the in-memory state.
package wal
