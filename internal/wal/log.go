package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Frame layout: | length uint32 LE | CRC32C uint32 LE | payload |.
const (
	frameHeaderSize = 8
	maxRecordLen    = 1 << 30
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

const (
	segPrefix  = "wal-"
	segSuffix  = ".seg"
	ckptPrefix = "checkpoint-"
	ckptSuffix = ".ckpt"
	metaName   = "META"

	lockFileName = "LOCK"
)

func segName(startLSN uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, startLSN, segSuffix)
}

func ckptName(lsn uint64) string {
	return fmt.Sprintf("%s%016x%s", ckptPrefix, lsn, ckptSuffix)
}

// parseSeqName extracts the hex sequence number from names such as
// wal-0000000000000010.seg given its prefix and suffix.
func parseSeqName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hex := name[len(prefix) : len(name)-len(suffix)]
	if len(hex) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// appendFrame appends one framed record to buf and returns the result.
func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// segScan is the result of scanning one segment's bytes.
type segScan struct {
	// records holds the payloads of every valid record, in order.
	records [][]byte
	// goodLen is the byte offset just past the last valid record.
	goodLen int64
	// torn reports trailing damage consistent with a crashed write:
	// a short header/payload, or a CRC-bad final frame.
	torn bool
	// midlog reports damage that cannot be a torn tail: a CRC-bad or
	// oversized frame followed by at least one complete frame whose
	// CRC verifies. Skipping it would replay a different history.
	midlog bool
}

// scanSegment walks the framed records in data, classifying any damage.
// Torn vs mid-log is decided by lookahead: if a later complete frame
// checks out, the damage is in the middle of acknowledged history.
func scanSegment(data []byte) segScan {
	var s segScan
	off := int64(0)
	n := int64(len(data))
	for off < n {
		if n-off < frameHeaderSize {
			s.torn = true
			break
		}
		length := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if length > maxRecordLen {
			s.torn = true
			if validFrameAfter(data[off+frameHeaderSize:]) {
				s.midlog = true
			}
			break
		}
		if n-off-frameHeaderSize < length {
			s.torn = true
			break
		}
		payload := data[off+frameHeaderSize : off+frameHeaderSize+length]
		if crc32.Checksum(payload, crcTable) != sum {
			s.torn = true
			if validFrameAfter(data[off+frameHeaderSize+length:]) {
				s.midlog = true
			}
			break
		}
		s.records = append(s.records, payload)
		off += frameHeaderSize + length
		s.goodLen = off
	}
	return s
}

// validFrameAfter reports whether data starts a complete frame whose
// CRC verifies, scanning forward over any residual garbage bytes is
// deliberately NOT done: a frame boundary immediately after the bad
// frame is the only placement a legitimate writer could have produced.
func validFrameAfter(data []byte) bool {
	if int64(len(data)) < frameHeaderSize {
		return false
	}
	length := int64(binary.LittleEndian.Uint32(data[0:4]))
	if length > maxRecordLen || int64(len(data))-frameHeaderSize < length {
		return false
	}
	payload := data[frameHeaderSize : frameHeaderSize+length]
	return crc32.Checksum(payload, crcTable) == binary.LittleEndian.Uint32(data[4:8])
}

// listSeqFiles returns the sorted sequence numbers of all files in dir
// matching prefix/suffix (segments or checkpoints).
func listSeqFiles(fs FS, dir, prefix, suffix string) ([]uint64, error) {
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, name := range names {
		if v, ok := parseSeqName(name, prefix, suffix); ok {
			seqs = append(seqs, v)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// logWriter appends framed records to the current segment, rotating to
// a fresh segment once segSize is exceeded. It does not decide sync
// policy — the store calls sync() at the cadence the policy dictates.
type logWriter struct {
	fs      FS
	dir     string
	segSize int64

	f     File          // current segment
	w     *bufio.Writer // buffers frames; flushed before any sync
	start uint64        // LSN of the current segment's first record
	count uint64        // records appended to the current segment
	bytes int64         // bytes appended to the current segment
}

// openLogWriter positions the writer to append records starting at
// nextLSN. If a segment already holds records [start, nextLSN), it is
// reopened for append; otherwise a new segment named for nextLSN is
// created.
func openLogWriter(fs FS, dir string, segSize int64, segStart uint64, segBytes int64, segCount uint64, nextLSN uint64) (*logWriter, error) {
	lw := &logWriter{fs: fs, dir: dir, segSize: segSize}
	if segCount > 0 && segStart+segCount == nextLSN {
		f, err := fs.OpenAppend(filepath.Join(dir, segName(segStart)))
		if err != nil {
			return nil, err
		}
		lw.f = f
		lw.start = segStart
		lw.count = segCount
		lw.bytes = segBytes
	} else {
		f, err := fs.Create(filepath.Join(dir, segName(nextLSN)))
		if err != nil {
			return nil, err
		}
		if err := fs.SyncDir(dir); err != nil {
			f.Close()
			return nil, err
		}
		lw.f = f
		lw.start = nextLSN
	}
	lw.w = bufio.NewWriterSize(lw.f, 1<<16)
	return lw, nil
}

// append frames payload onto the current segment, rotating first if the
// segment is full. It does not sync.
func (lw *logWriter) append(payload []byte) error {
	if lw.bytes >= lw.segSize && lw.count > 0 {
		if err := lw.rotate(); err != nil {
			return err
		}
	}
	frame := appendFrame(nil, payload)
	if _, err := lw.w.Write(frame); err != nil {
		return err
	}
	lw.count++
	lw.bytes += int64(len(frame))
	return nil
}

// rotate syncs and closes the current segment and opens a fresh one
// whose name is the next LSN.
func (lw *logWriter) rotate() error {
	if err := lw.sync(); err != nil {
		return err
	}
	if err := lw.f.Close(); err != nil {
		return err
	}
	next := lw.start + lw.count
	f, err := lw.fs.Create(filepath.Join(lw.dir, segName(next)))
	if err != nil {
		return err
	}
	if err := lw.fs.SyncDir(lw.dir); err != nil {
		f.Close()
		return err
	}
	lw.f = f
	lw.w = bufio.NewWriterSize(f, 1<<16)
	lw.start = next
	lw.count = 0
	lw.bytes = 0
	return nil
}

// flush drains the buffer to the OS without fsyncing.
func (lw *logWriter) flush() error { return lw.w.Flush() }

// sync flushes the buffer and fsyncs the segment.
func (lw *logWriter) sync() error {
	if err := lw.w.Flush(); err != nil {
		return err
	}
	return lw.f.Sync()
}

// close syncs and closes the current segment.
func (lw *logWriter) close() error {
	err := lw.sync()
	if cerr := lw.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// crash abandons buffered bytes and closes the file without flushing or
// syncing — simulating process death for tests.
func (lw *logWriter) crash() {
	lw.w = bufio.NewWriterSize(lw.f, 1) // drop buffered frames
	_ = lw.f.Close()
}
