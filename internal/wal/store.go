package wal

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hyperprov/internal/core"
	"hyperprov/internal/db"
	"hyperprov/internal/engine"
	"hyperprov/internal/provstore"
)

// Sentinel errors; test with errors.Is.
var (
	// ErrReadOnly reports that a persistent append or fsync failed and
	// the store degraded to read-only. The wrapped message carries the
	// original cause.
	ErrReadOnly = errors.New("wal: store is read-only after a durability failure")
	// ErrLocked reports that another process holds the data directory.
	ErrLocked = errors.New("wal: data directory is locked")
	// ErrCorrupt reports unrecoverable damage: a corrupt record with
	// intact history after it, a broken segment chain, or an unloadable
	// checkpoint that acknowledged records depend on.
	ErrCorrupt = errors.New("wal: log is corrupt")
	// ErrClosed reports an operation on a closed store.
	ErrClosed = errors.New("wal: store is closed")
)

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy uint8

const (
	// SyncAlways fsyncs on every commit (one fsync per batch for
	// ApplyAll — group commit). Acknowledged writes survive power loss.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background timer; a crash can lose up to
	// one interval of acknowledged writes, never corrupt the log.
	SyncInterval
	// SyncNever leaves fsync to the OS. Process crashes lose nothing
	// already written to the kernel; power loss can lose everything
	// since the last checkpoint.
	SyncNever
)

// String names the policy as accepted by ParseSyncPolicy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", uint8(p))
	}
}

// ParseSyncPolicy parses "always", "interval" or "never".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	default:
		return SyncAlways, fmt.Errorf("wal: unknown sync policy %q (want always, interval or never)", s)
	}
}

// options collects Open configuration.
type options struct {
	mode      engine.Mode
	schema    *db.Schema
	initial   *db.Database
	engOpts   []engine.Option
	sync      SyncPolicy
	interval  time.Duration
	segSize   int64
	ckptEach  uint64
	heartbeat time.Duration
	fs        FS

	// Follower resilience knobs (ignored by leader stores).
	redialBase      time.Duration
	redialCap       time.Duration
	redialRand      func() float64 // injectable jitter source for tests
	breakerBudget   int
	breakerCooldown time.Duration
	stallTimeout    time.Duration
}

// Option configures Open.
type Option func(*options)

// WithMode selects the provenance mode for a new store. Ignored when
// the directory already exists — the persisted mode wins.
func WithMode(m engine.Mode) Option { return func(o *options) { o.mode = m } }

// WithSchema supplies the schema for bootstrapping an empty store.
func WithSchema(s *db.Schema) Option { return func(o *options) { o.schema = s } }

// WithInitialDatabase bootstraps a new store from an initial database;
// its rows become the initial checkpoint. Ignored when the directory
// already holds a store.
func WithInitialDatabase(d *db.Database) Option { return func(o *options) { o.initial = d } }

// WithEngineOptions passes options (sharding, auto-indexing, ...) to
// the underlying engine on every open. The shard count may differ
// between opens: snapshot and log bytes are engine-shape independent.
func WithEngineOptions(opts ...engine.Option) Option {
	return func(o *options) { o.engOpts = append(o.engOpts, opts...) }
}

// WithSync selects the fsync policy (default SyncAlways).
func WithSync(p SyncPolicy) Option { return func(o *options) { o.sync = p } }

// WithSyncInterval sets the SyncInterval timer period (default 50ms).
func WithSyncInterval(d time.Duration) Option { return func(o *options) { o.interval = d } }

// WithSegmentSize sets the log segment rotation threshold in bytes
// (default 16 MiB).
func WithSegmentSize(n int64) Option { return func(o *options) { o.segSize = n } }

// WithCheckpointEvery checkpoints automatically after every n appended
// records (0, the default, disables automatic checkpoints).
func WithCheckpointEvery(n uint64) Option { return func(o *options) { o.ckptEach = n } }

// WithHeartbeatEvery sets how often an idle replication stream sends a
// heartbeat frame (default 500ms). Heartbeats carry the leader LSN and
// committed horizon, so followers can report lag even with no writes.
func WithHeartbeatEvery(d time.Duration) Option { return func(o *options) { o.heartbeat = d } }

// WithFS substitutes the filesystem — the fault-injection hook.
func WithFS(fs FS) Option { return func(o *options) { o.fs = fs } }

// WithRedialBackoff bounds a follower's redial schedule: delays are
// full-jitter exponential, uniform in [0, min(cap, base·2ⁿ)), so N
// replicas that lose their leader together spread their reconnects
// across the window instead of redialing in lockstep. Defaults: 50ms
// base, 2s cap. Ignored by leader stores.
func WithRedialBackoff(base, cap time.Duration) Option {
	return func(o *options) {
		o.redialBase = base
		o.redialCap = cap
	}
}

// WithReconnectBudget arms a follower's redial circuit breaker: after
// budget consecutive sessions that made no progress the follower stops
// dialing for cooldown (then probes once, half-open). Zero budget (the
// default) disables the breaker — the follower redials forever on
// backoff alone. Ignored by leader stores.
func WithReconnectBudget(budget int, cooldown time.Duration) Option {
	return func(o *options) {
		o.breakerBudget = budget
		o.breakerCooldown = cooldown
	}
}

// WithStreamStallTimeout bounds how long a follower session waits for
// the next frame before declaring the link dead and redialing. Idle
// leaders heartbeat every WithHeartbeatEvery (default 500ms), so a
// healthy stream is never silent for long — the timeout catches
// network partitions that blackhole the connection without closing it.
// Default 10s; 0 or negative waits forever (the pre-partition-aware
// behavior). Ignored by leader stores.
func WithStreamStallTimeout(d time.Duration) Option {
	return func(o *options) { o.stallTimeout = d }
}

// Store is a durable provenance engine: an engine.DB whose write
// methods append to a write-ahead log before (transactions) or after
// (minimize, index builds) taking effect, with checkpointing and crash
// recovery. It implements engine.DB, so everything that runs against an
// engine runs against a Store.
type Store struct {
	dir string
	fs  FS

	mu sync.Mutex
	// eng holds the served engine behind an atomic pointer: writers
	// (bootstrap, recovery, follower resync) swap it under mu, but the
	// lock-free read surface loads it without the lock — a follower
	// resync replacing the engine must not race pinned readers.
	eng       atomic.Pointer[engine.DB]
	lw        *logWriter
	lsn       uint64 // next LSN to assign
	ckptLSN   uint64 // records below this are in the latest checkpoint
	sinceCkpt uint64
	closed    bool
	release   func() // directory lock
	hasInit   bool   // bootstrap database had rows (lives in META)

	// Replication: registered follower streams. Each handle's position
	// fences log pruning; attached handles receive committed records.
	streams map[*streamHandle]struct{}

	readOnly atomic.Bool
	roCause  atomic.Value // error

	stopSync chan struct{}
	syncWG   sync.WaitGroup

	opts options

	// counters (atomic: read by Stats without mu)
	appended  atomic.Uint64
	syncs     atomic.Uint64
	ckpts     atomic.Uint64
	ckptFails atomic.Uint64
	replayed  uint64 // set once during Open
	truncated int64  // torn-tail bytes discarded during Open
	recovered bool

	// replication counters
	streamsServed  atomic.Uint64
	resyncsServed  atomic.Uint64
	streamLagDrops atomic.Uint64

	// hook is the commit-event subscriber, re-installed on every engine
	// this store serves (recovery and follower resyncs swap engines;
	// the subscriber must not notice beyond a reset event).
	hookMu sync.Mutex
	hook   engine.CommitHook
}

var _ engine.DB = (*Store)(nil)

// engine loads the served engine without taking mu — the read
// delegation surface is lock-free, exactly like the engine itself.
func (s *Store) engine() engine.DB {
	if p := s.eng.Load(); p != nil {
		return *p
	}
	return nil
}

// setEngine swaps the served engine. Callers hold mu (or, during
// Open/bootstrap, have exclusive ownership of the store). A commit
// hook installed on the store moves to the new engine, and the swap is
// announced to it as a CommitReset at the new engine's horizon:
// subscribers must rebuild, exactly as after a follower resync.
func (s *Store) setEngine(e engine.DB) {
	s.hookMu.Lock()
	h := s.hook
	s.hookMu.Unlock()
	if e != nil && h != nil {
		e.SetCommitHook(h)
	}
	s.eng.Store(&e)
	if e != nil && h != nil {
		hz := e.Horizon()
		h(engine.CommitEvent{Kind: engine.CommitReset, Epoch: engine.SeqEpoch(hz), Seq: hz})
	}
}

// SetCommitHook implements engine.DB: the hook is installed on the
// engine currently served and survives engine swaps (recovery,
// follower resync), each announced as a CommitReset.
func (s *Store) SetCommitHook(h engine.CommitHook) {
	s.hookMu.Lock()
	s.hook = h
	s.hookMu.Unlock()
	if e := s.engine(); e != nil {
		e.SetCommitHook(h)
	}
}

// StoreStats is a point-in-time summary of the durability subsystem.
type StoreStats struct {
	Dir            string `json:"dir"`
	Sync           string `json:"sync"`
	LSN            uint64 `json:"lsn"`
	CheckpointLSN  uint64 `json:"checkpoint_lsn"`
	Appended       uint64 `json:"appended"`
	Syncs          uint64 `json:"syncs"`
	Checkpoints    uint64 `json:"checkpoints"`
	CheckpointErrs uint64 `json:"checkpoint_failures"`
	Recovered      bool   `json:"recovered"`
	Replayed       uint64 `json:"replayed_records"`
	TruncatedTail  int64  `json:"truncated_tail_bytes"`
	ReadOnly       bool   `json:"read_only"`
	ReadOnlyCause  string `json:"read_only_cause,omitempty"`

	// Leader-side replication counters.
	ActiveStreams  int    `json:"active_streams"`
	StreamsServed  uint64 `json:"streams_served"`
	ResyncsServed  uint64 `json:"resyncs_served"`
	StreamLagDrops uint64 `json:"stream_lag_drops"`
}

// Open opens (or bootstraps) the persistent store in dir. A fresh
// directory needs WithSchema or WithInitialDatabase; an existing one
// recovers from its latest checkpoint plus the log suffix. The
// directory is locked against concurrent opens for the lifetime of the
// store.
func Open(dir string, opts ...Option) (*Store, error) {
	o := options{
		mode:      engine.ModeNormalForm,
		sync:      SyncAlways,
		interval:  50 * time.Millisecond,
		segSize:   16 << 20,
		heartbeat: 500 * time.Millisecond,
		fs:        OSFS{},
	}
	for _, opt := range opts {
		opt(&o)
	}
	if o.segSize < 1<<10 {
		o.segSize = 1 << 10
	}
	if o.heartbeat <= 0 {
		o.heartbeat = 500 * time.Millisecond
	}
	if err := o.fs.MkdirAll(dir); err != nil {
		return nil, err
	}
	release, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	s := &Store{dir: dir, fs: o.fs, release: release, opts: o}
	if err := s.open(); err != nil {
		release()
		return nil, err
	}
	s.startSyncLoop()
	return s, nil
}

// startSyncLoop launches the SyncInterval timer when the policy asks
// for one. No-op for the other policies.
func (s *Store) startSyncLoop() {
	if s.opts.sync != SyncInterval {
		return
	}
	s.stopSync = make(chan struct{})
	s.syncWG.Add(1)
	go s.syncLoop()
}

func (s *Store) open() error {
	meta, err := readMeta(s.fs, s.dir)
	if errors.Is(err, errNoMeta) {
		return s.bootstrap()
	}
	if err != nil {
		return err
	}
	return s.recover(meta)
}

// bootstrap initialises a fresh data directory: META, an initial
// checkpoint when the bootstrap database has rows, and the first log
// segment. Refuses a directory that already holds store files without
// a META (a half-deleted or foreign directory).
func (s *Store) bootstrap() error {
	names, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return err
	}
	// A store writes META before its first segment, so segments (or a
	// post-bootstrap checkpoint) without a META mean a half-deleted or
	// foreign directory — refuse. A lone LSN-0 checkpoint or temp file
	// is an interrupted bootstrap that never completed: clean it up and
	// bootstrap again.
	var leftovers []string
	for _, name := range names {
		if _, ok := parseSeqName(name, segPrefix, segSuffix); ok {
			return fmt.Errorf("%w: %s has log segments but no META", ErrCorrupt, s.dir)
		}
		if v, ok := parseSeqName(name, ckptPrefix, ckptSuffix); ok {
			if v != 0 {
				return fmt.Errorf("%w: %s has checkpoints but no META", ErrCorrupt, s.dir)
			}
			leftovers = append(leftovers, name)
		}
		if name == "checkpoint.tmp" || name == "META.tmp" {
			leftovers = append(leftovers, name)
		}
	}
	for _, name := range leftovers {
		if err := s.fs.Remove(filepath.Join(s.dir, name)); err != nil {
			return err
		}
	}
	initial := s.opts.initial
	if initial == nil {
		if s.opts.schema == nil {
			return fmt.Errorf("wal: a new store needs WithSchema or WithInitialDatabase")
		}
		initial = db.NewDatabase(s.opts.schema)
	}
	s.setEngine(engine.Open(s.opts.mode, initial, s.opts.engOpts...))
	hasInit := s.engine().NumRows() > 0
	if hasInit {
		// The bootstrap rows exist only in memory; a checkpoint is the
		// sole durable copy, so its failure fails Open.
		if err := s.writeCheckpoint(0); err != nil {
			return fmt.Errorf("wal: initial checkpoint: %w", err)
		}
	}
	if err := writeMeta(s.fs, s.dir, s.engine().Mode(), s.engine().Schema(), hasInit); err != nil {
		return err
	}
	s.hasInit = hasInit
	lw, err := openLogWriter(s.fs, s.dir, s.opts.segSize, 0, 0, 0, 0)
	if err != nil {
		return err
	}
	s.lw = lw
	return nil
}

// recover rebuilds the engine from the newest loadable checkpoint plus
// the log suffix. Tail damage in the final segment is truncated; damage
// anywhere else is ErrCorrupt.
func (s *Store) recover(meta *metaInfo) error {
	s.recovered = true
	s.hasInit = meta.hasInit
	ckptSeqs, err := listSeqFiles(s.fs, s.dir, ckptPrefix, ckptSuffix)
	if err != nil {
		return err
	}
	// Newest loadable checkpoint wins. An older checkpoint is only
	// usable if the log still covers the records after it, which the
	// segment-chain walk below verifies against replayStart.
	var replayStart uint64
	var loadErr error
	s.setEngine(nil)
	for i := len(ckptSeqs) - 1; i >= 0; i-- {
		data, err := s.fs.ReadFile(filepath.Join(s.dir, ckptName(ckptSeqs[i])))
		if err != nil {
			loadErr = err
			continue
		}
		eng, err := provstore.LoadSnapshot(bytes.NewReader(data), s.opts.engOpts...)
		if err != nil {
			loadErr = err
			continue
		}
		s.setEngine(eng)
		replayStart = ckptSeqs[i]
		break
	}
	if s.engine() == nil {
		if len(ckptSeqs) > 0 {
			return fmt.Errorf("%w: no loadable checkpoint: %v", ErrCorrupt, loadErr)
		}
		if meta.hasInit {
			return fmt.Errorf("%w: initial checkpoint is missing", ErrCorrupt)
		}
		s.setEngine(engine.OpenEmpty(meta.mode, meta.schema, s.opts.engOpts...))
	}

	segs, err := listSeqFiles(s.fs, s.dir, segPrefix, segSuffix)
	if err != nil {
		return err
	}
	// Start at the last segment that could contain replayStart.
	startIdx := 0
	found := len(segs) == 0
	for i, start := range segs {
		if start <= replayStart {
			startIdx = i
			found = true
		}
	}
	if !found {
		return fmt.Errorf("%w: log starts at %d, checkpoint covers %d", ErrCorrupt, segs[0], replayStart)
	}

	nextLSN := replayStart
	var segStart, segCount uint64
	var segBytes int64
	expect := uint64(0)
	for i := startIdx; i < len(segs); i++ {
		start := segs[i]
		if i > startIdx && start != expect {
			if start < expect || start > replayStart {
				return fmt.Errorf("%w: segment chain broken at %d (expected %d)", ErrCorrupt, start, expect)
			}
			// The gap holds only records the checkpoint covers: a crash
			// interrupted pruning. Benign.
		}
		path := filepath.Join(s.dir, segName(start))
		data, err := s.fs.ReadFile(path)
		if err != nil {
			return err
		}
		sc := scanSegment(data)
		final := i == len(segs)-1
		if sc.midlog {
			return fmt.Errorf("%w: damaged record inside %s with intact records after it", ErrCorrupt, segName(start))
		}
		if sc.torn {
			if !final {
				return fmt.Errorf("%w: damaged tail in non-final segment %s", ErrCorrupt, segName(start))
			}
			s.truncated = int64(len(data)) - sc.goodLen
			if err := s.fs.Truncate(path, sc.goodLen); err != nil {
				return err
			}
		}
		for j, payload := range sc.records {
			lsn := start + uint64(j)
			if lsn < replayStart {
				continue
			}
			if err := s.replayRecord(payload); err != nil {
				return fmt.Errorf("%w: record %d: %v", ErrCorrupt, lsn, err)
			}
			s.replayed++
		}
		expect = start + uint64(len(sc.records))
		if expect > nextLSN {
			nextLSN = expect
		}
		segStart, segCount, segBytes = start, uint64(len(sc.records)), sc.goodLen
	}
	s.lsn = nextLSN
	s.ckptLSN = replayStart
	lw, err := openLogWriter(s.fs, s.dir, s.opts.segSize, segStart, segBytes, segCount, nextLSN)
	if err != nil {
		return err
	}
	s.lw = lw
	return nil
}

// replayRecord re-applies one decoded record. Transaction and index
// replay errors are deterministic re-runs of errors the original
// process already returned, so they are not failures; decode and
// restore errors mean the log does not match the schema — corruption.
func (s *Store) replayRecord(payload []byte) error {
	rec, err := decodeRecord(payload)
	if err != nil {
		return err
	}
	return s.applyDecoded(rec)
}

// applyDecoded applies one already-decoded record to the engine — the
// shared tail of recovery replay and replicated apply.
func (s *Store) applyDecoded(rec *Record) error {
	switch rec.Type {
	case recTxn:
		_ = s.engine().ApplyTransaction(rec.Txn)
	case recRestore:
		if err := s.engine().RestoreRow(rec.Rel, rec.Tuple, rec.Ann); err != nil {
			return err
		}
	case recMinimize:
		if _, err := s.engine().MinimizeAll(context.Background()); err != nil {
			return err
		}
	case recBuildIndex:
		_ = s.engine().BuildIndex(rec.Rel, rec.Attr)
	case recDropIndex:
		_ = s.engine().DropIndex(rec.Rel, rec.Attr)
	}
	return nil
}

// --- write path ---------------------------------------------------------

// roError returns the typed read-only error carrying the first cause.
func (s *Store) roError() error {
	if cause, ok := s.roCause.Load().(error); ok {
		return fmt.Errorf("%w (cause: %w)", ErrReadOnly, cause)
	}
	return ErrReadOnly
}

// degradeLocked flips the store to read-only after a durability
// failure and returns the typed error. In-memory state stays readable;
// only the first cause is kept.
func (s *Store) degradeLocked(cause error) error {
	if s.readOnly.CompareAndSwap(false, true) {
		s.roCause.Store(cause)
	}
	return s.roError()
}

// commitLocked makes the appended records as durable as the sync
// policy promises: fsync for SyncAlways, flush-to-OS otherwise.
func (s *Store) commitLocked() error {
	if s.opts.sync == SyncAlways {
		if err := s.lw.sync(); err != nil {
			return err
		}
		s.syncs.Add(1)
		return nil
	}
	return s.lw.flush()
}

// appendLocked appends payloads and commits them per the sync policy
// (one fsync for the whole group). On failure the store degrades to
// read-only: the log may hold a prefix of the group, so no further
// writes can be acknowledged safely.
func (s *Store) appendLocked(payloads ...[]byte) error {
	if s.closed {
		return ErrClosed
	}
	if s.readOnly.Load() {
		return s.roError()
	}
	for _, p := range payloads {
		if err := s.lw.append(p); err != nil {
			return s.degradeLocked(err)
		}
	}
	if err := s.commitLocked(); err != nil {
		return s.degradeLocked(err)
	}
	base := s.lsn
	s.lsn += uint64(len(payloads))
	s.sinceCkpt += uint64(len(payloads))
	s.appended.Add(uint64(len(payloads)))
	// Committed (flushed at minimum): safe to fan out to followers.
	s.publishStreamLocked(base, payloads)
	return nil
}

// checkTxn mirrors the engine's static apply checks (the only errors
// ApplyTransaction can return). Transactions that pass never fail to
// apply, which keeps the batched path deterministic; transactions that
// fail are applied sequentially so the engine's partial-effect
// semantics — and its error text — are preserved exactly.
func (s *Store) checkTxn(t *db.Transaction) bool {
	schema := s.engine().Schema()
	for i := range t.Updates {
		u := &t.Updates[i]
		if schema.Relation(u.Rel) == nil {
			return false
		}
		switch u.Kind {
		case db.OpInsert, db.OpDelete, db.OpModify:
		default:
			return false
		}
	}
	return true
}

// ApplyTransaction logs the transaction, commits it per the sync
// policy, then applies it to the engine. The engine's apply errors are
// deterministic, so a logged transaction that fails mid-way replays to
// the identical partial state.
func (s *Store) ApplyTransaction(t *db.Transaction) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applyTxnLocked(t)
}

func (s *Store) applyTxnLocked(t *db.Transaction) error {
	if err := s.appendLocked(encodeTxn(t)); err != nil {
		return err
	}
	err := s.engine().ApplyTransaction(t)
	s.maybeCheckpointLocked()
	return err
}

// applyAllChunk is how many transactions share one group commit.
const applyAllChunk = 256

// ApplyAll appends and applies txns in chunks of applyAllChunk, one
// fsync per chunk under SyncAlways (group commit). ctx is checked at
// chunk boundaries only, so every logged record is fully applied — a
// cancelled batch never leaves the log ahead of the engine by a
// half-applied chunk. See ApplyBatch to learn how many transactions a
// cancelled or failed batch durably applied.
func (s *Store) ApplyAll(ctx context.Context, txns []db.Transaction) error {
	_, err := s.ApplyBatch(ctx, txns)
	return err
}

// ApplyBatch is ApplyAll reporting the durably applied (logged and
// applied) prefix: after a cancellation or failure, recovery and
// replication resume from txns[applied:] without double-applying.
func (s *Store) ApplyBatch(ctx context.Context, txns []db.Transaction) (applied int, err error) {
	for len(txns) > 0 {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return applied, err
			}
		}
		n := len(txns)
		if n > applyAllChunk {
			n = applyAllChunk
		}
		k, err := s.applyChunk(txns[:n])
		applied += k
		if err != nil {
			return applied, err
		}
		txns = txns[n:]
	}
	return applied, nil
}

func (s *Store) applyChunk(chunk []db.Transaction) (applied int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	firstBad := len(chunk)
	for i := range chunk {
		if !s.checkTxn(&chunk[i]) {
			firstBad = i
			break
		}
	}
	if firstBad == len(chunk) {
		payloads := make([][]byte, len(chunk))
		for i := range chunk {
			payloads[i] = encodeTxn(&chunk[i])
		}
		if err := s.appendLocked(payloads...); err != nil {
			return 0, err
		}
		// Validated above: cannot fail, so the sharded engine's
		// stop-on-error nondeterminism is unreachable here.
		applied, err = s.engine().ApplyBatch(context.Background(), chunk)
		s.maybeCheckpointLocked()
		return applied, err
	}
	// A transaction in this chunk will fail its static checks: fall
	// back to the sequential path, stopping at the first error exactly
	// like engine.ApplyAll does.
	for i := 0; i <= firstBad && i < len(chunk); i++ {
		if err := s.applyTxnLocked(&chunk[i]); err != nil {
			return i, err
		}
	}
	return firstBad + 1, nil
}

// RestoreRow validates statically, logs, then applies. Invalid calls
// are delegated unlogged so the engine's error text is canonical.
func (s *Store) RestoreRow(rel string, t db.Tuple, ann *core.Expr) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.engine().Schema().Relation(rel)
	if r == nil || t.Conforms(r) != nil {
		return s.engine().RestoreRow(rel, t, ann)
	}
	payload, err := encodeRestore(rel, t, ann)
	if err != nil {
		return err
	}
	if err := s.appendLocked(payload); err != nil {
		return err
	}
	if err := s.engine().RestoreRow(rel, t, ann); err != nil {
		return err
	}
	s.maybeCheckpointLocked()
	return nil
}

// MinimizeAll minimizes every annotation and logs a minimize record on
// success (log-after-success: replaying the record re-runs the full
// pass). A cancelled pass is not logged; the annotations it already
// rewrote stay equivalent, so only byte-level identity with a recovery
// is deferred until the next completed pass or checkpoint.
func (s *Store) MinimizeAll(ctx context.Context) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	if s.readOnly.Load() {
		return 0, s.roError()
	}
	n, err := s.engine().MinimizeAll(ctx)
	if err != nil {
		return n, err
	}
	if err := s.appendLocked(encodeMinimize()); err != nil {
		return n, err
	}
	s.maybeCheckpointLocked()
	return n, nil
}

// BuildIndex builds the index, then logs it (log-after-success) so
// recovery rebuilds it. Indexes are pure access paths: a lost index
// record changes no answer, so replay errors are ignored.
func (s *Store) BuildIndex(rel, attr string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.readOnly.Load() {
		return s.roError()
	}
	if err := s.engine().BuildIndex(rel, attr); err != nil {
		return err
	}
	return s.appendLocked(encodeIndexOp(recBuildIndex, rel, attr))
}

// DropIndex drops the index, then logs it.
func (s *Store) DropIndex(rel, attr string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.readOnly.Load() {
		return s.roError()
	}
	if err := s.engine().DropIndex(rel, attr); err != nil {
		return err
	}
	return s.appendLocked(encodeIndexOp(recDropIndex, rel, attr))
}

// --- checkpointing ------------------------------------------------------

// writeCheckpoint snapshots the engine to checkpoint-<lsn> via a temp
// file, fsync and atomic rename.
func (s *Store) writeCheckpoint(lsn uint64) error {
	tmp := filepath.Join(s.dir, "checkpoint.tmp")
	f, err := s.fs.Create(tmp)
	if err != nil {
		return err
	}
	if err := provstore.SaveSnapshot(f, s.engine()); err != nil {
		f.Close()
		_ = s.fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		_ = s.fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = s.fs.Remove(tmp)
		return err
	}
	if err := s.fs.Rename(tmp, filepath.Join(s.dir, ckptName(lsn))); err != nil {
		_ = s.fs.Remove(tmp)
		return err
	}
	return s.fs.SyncDir(s.dir)
}

// Checkpoint snapshots the current state, rotates the log, and prunes
// segments and checkpoints the new checkpoint supersedes. On failure
// the store keeps running on the log alone — a failed checkpoint loses
// nothing.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checkpointLocked()
}

func (s *Store) checkpointLocked() error {
	if s.closed {
		return ErrClosed
	}
	if s.readOnly.Load() {
		return s.roError()
	}
	lsn := s.lsn
	if err := s.writeCheckpoint(lsn); err != nil {
		return err
	}
	s.ckptLSN = lsn
	s.sinceCkpt = 0
	s.ckpts.Add(1)
	// Rotate so the live segment starts at the checkpoint LSN, then
	// prune everything the checkpoint supersedes. Failures here leave
	// stale files recovery knows to skip, so they are best-effort.
	if s.lw.count > 0 {
		if err := s.lw.rotate(); err != nil {
			return s.degradeLocked(err)
		}
	}
	// Active replication streams fence pruning: a segment is deleted
	// only if every record it can hold precedes the slowest stream's
	// position, so a follower catching up from disk never has its
	// segment removed mid-read.
	fence := s.minStreamPosLocked()
	if names, err := s.fs.ReadDir(s.dir); err == nil {
		var starts []uint64
		for _, name := range names {
			if v, ok := parseSeqName(name, segPrefix, segSuffix); ok {
				starts = append(starts, v)
			}
		}
		sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
		segEnd := func(v uint64) uint64 {
			// A segment's records end where the next one starts; the
			// live segment (start == lsn after the rotate above) always
			// bounds the last old one.
			i := sort.Search(len(starts), func(i int) bool { return starts[i] > v })
			if i < len(starts) {
				return starts[i]
			}
			return lsn
		}
		for _, name := range names {
			if v, ok := parseSeqName(name, segPrefix, segSuffix); ok && v < lsn && v != s.lw.start {
				if segEnd(v) <= fence {
					_ = s.fs.Remove(filepath.Join(s.dir, name))
				}
			}
			if v, ok := parseSeqName(name, ckptPrefix, ckptSuffix); ok && v < lsn {
				_ = s.fs.Remove(filepath.Join(s.dir, name))
			}
		}
		_ = s.fs.SyncDir(s.dir)
	}
	return nil
}

// maybeCheckpointLocked runs the automatic checkpoint cadence. An
// automatic checkpoint failure must not fail the apply that triggered
// it (the log holds the data); it is counted and retried at the next
// threshold crossing.
func (s *Store) maybeCheckpointLocked() {
	if s.opts.ckptEach == 0 || s.sinceCkpt < s.opts.ckptEach {
		return
	}
	if err := s.checkpointLocked(); err != nil {
		s.ckptFails.Add(1)
		s.sinceCkpt = 0 // back off until the next full interval
	}
}

// --- lifecycle ----------------------------------------------------------

// syncLoop is the SyncInterval timer.
func (s *Store) syncLoop() {
	defer s.syncWG.Done()
	t := time.NewTicker(s.opts.interval)
	defer t.Stop()
	for {
		select {
		case <-s.stopSync:
			return
		case <-t.C:
			s.mu.Lock()
			if !s.closed && !s.readOnly.Load() {
				if err := s.lw.sync(); err != nil {
					_ = s.degradeLocked(err)
				} else {
					s.syncs.Add(1)
				}
			}
			s.mu.Unlock()
		}
	}
}

// Close syncs and closes the log and releases the directory lock.
func (s *Store) Close() error {
	if s.stopSync != nil {
		select {
		case <-s.stopSync:
		default:
			close(s.stopSync)
		}
		s.syncWG.Wait()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.closeStreamsLocked()
	var err error
	if !s.readOnly.Load() {
		err = s.lw.close()
	} else {
		_ = s.lw.f.Close()
	}
	s.release()
	return err
}

// Crash abandons buffered log bytes and drops the store without
// flushing or syncing, simulating process death mid-write. Test hook.
func (s *Store) Crash() {
	if s.stopSync != nil {
		select {
		case <-s.stopSync:
		default:
			close(s.stopSync)
		}
		s.syncWG.Wait()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.closeStreamsLocked()
	s.lw.crash()
	s.release()
}

// Underlying exposes the wrapped engine for diagnostics (the server's
// sharded-stats endpoint type-asserts on the concrete engine).
func (s *Store) Underlying() engine.DB { return s.engine() }

// Dir returns the data directory.
func (s *Store) Dir() string { return s.dir }

// ReadOnly reports whether the store has degraded to read-only.
func (s *Store) ReadOnly() bool { return s.readOnly.Load() }

// Stats summarizes the durability subsystem.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	lsn, ckptLSN := s.lsn, s.ckptLSN
	active := len(s.streams)
	s.mu.Unlock()
	st := StoreStats{
		Dir:            s.dir,
		Sync:           s.opts.sync.String(),
		LSN:            lsn,
		CheckpointLSN:  ckptLSN,
		Appended:       s.appended.Load(),
		Syncs:          s.syncs.Load(),
		Checkpoints:    s.ckpts.Load(),
		CheckpointErrs: s.ckptFails.Load(),
		Recovered:      s.recovered,
		Replayed:       s.replayed,
		TruncatedTail:  s.truncated,
		ReadOnly:       s.readOnly.Load(),
		ActiveStreams:  active,
		StreamsServed:  s.streamsServed.Load(),
		ResyncsServed:  s.resyncsServed.Load(),
		StreamLagDrops: s.streamLagDrops.Load(),
	}
	if cause, ok := s.roCause.Load().(error); ok {
		st.ReadOnlyCause = cause.Error()
	}
	return st
}

// --- read side: pure delegation (the engine has its own locks) ----------

// Mode implements engine.DB.
func (s *Store) Mode() engine.Mode { return s.engine().Mode() }

// Schema implements engine.DB.
func (s *Store) Schema() *db.Schema { return s.engine().Schema() }

// Relations implements engine.DB.
func (s *Store) Relations() []string { return s.engine().Relations() }

// IndexStats implements engine.DB.
func (s *Store) IndexStats() []engine.IndexInfo { return s.engine().IndexStats() }

// PlannerStats implements engine.DB.
func (s *Store) PlannerStats() engine.PlannerStats { return s.engine().PlannerStats() }

// Annotation implements engine.DB.
func (s *Store) Annotation(rel string, t db.Tuple) *core.Expr { return s.engine().Annotation(rel, t) }

// NF implements engine.DB.
func (s *Store) NF(rel string, t db.Tuple) *core.NF { return s.engine().NF(rel, t) }

// EachRow implements engine.DB.
func (s *Store) EachRow(rel string, f func(t db.Tuple, ann *core.Expr)) { s.engine().EachRow(rel, f) }

// Rows implements engine.DB.
func (s *Store) Rows(f func(rel string, t db.Tuple, ann *core.Expr)) { s.engine().Rows(f) }

// Select implements engine.DB.
func (s *Store) Select(rel string, sel db.Pattern) ([]db.Tuple, error) {
	return s.engine().Select(rel, sel)
}

// NumRows implements engine.DB.
func (s *Store) NumRows() int { return s.engine().NumRows() }

// SupportSize implements engine.DB.
func (s *Store) SupportSize() int { return s.engine().SupportSize() }

// ProvSize implements engine.DB.
func (s *Store) ProvSize() int64 { return s.engine().ProvSize() }

// ProvDAGSize implements engine.DB.
func (s *Store) ProvDAGSize() int64 { return s.engine().ProvDAGSize() }

// At implements engine.DB: a pinned read-only view of the underlying
// engine. Views do not read the log, so the history they can pin starts
// at the state the engine was recovered (or opened) with — epochs from
// a previous process life are replayed into the recovery horizon, not
// preserved individually.
func (s *Store) At(seq uint64) engine.View { return s.engine().At(seq) }

// Horizon implements engine.DB.
func (s *Store) Horizon() uint64 { return s.engine().Horizon() }

// WaitHorizon implements engine.DB.
func (s *Store) WaitHorizon(ctx context.Context, seq uint64) error {
	return s.engine().WaitHorizon(ctx, seq)
}

// MVCCStats implements engine.DB.
func (s *Store) MVCCStats() engine.MVCCStats { return s.engine().MVCCStats() }
