//go:build !unix

package wal

import (
	"fmt"
	"os"
	"path/filepath"
)

// lockDir on platforms without flock falls back to exclusive creation
// of <dir>/LOCK. Unlike the flock version, a crashed process leaves the
// file behind; the operator must remove it by hand.
func lockDir(dir string) (release func(), err error) {
	path := filepath.Join(dir, lockFileName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		if os.IsExist(err) {
			return nil, fmt.Errorf("%w: %s (remove it if no other process is running)", ErrLocked, path)
		}
		return nil, err
	}
	f.Close()
	return func() { _ = os.Remove(path) }, nil
}
