package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"hyperprov/internal/db"
	"hyperprov/internal/engine"
)

// metaMagic identifies the META file (format version 1).
const metaMagic = "HPWM1\n"

// errNoMeta reports a directory without a META file — a fresh store.
var errNoMeta = errors.New("wal: no META file")

// metaInfo is the store identity persisted once at bootstrap: the
// provenance mode, the schema, and whether the bootstrap database had
// rows (in which case a loadable checkpoint must exist — a WAL-only
// recovery would silently drop the initial data).
type metaInfo struct {
	mode    engine.Mode
	schema  *db.Schema
	hasInit bool
}

// encodeSchema appends the canonical schema encoding — shared by the
// META file and the replication handshake, so a follower bootstraps
// exactly the identity a local bootstrap would persist.
func encodeSchema(e *recEncoder, schema *db.Schema) {
	names := schema.Names()
	e.uvarint(uint64(len(names)))
	for _, name := range names {
		rel := schema.Relation(name)
		e.str(rel.Name)
		e.uvarint(uint64(len(rel.Attrs)))
		for _, a := range rel.Attrs {
			e.str(a.Name)
			e.byte(byte(a.Kind))
		}
	}
}

// decodeSchema reads the canonical schema encoding with the usual
// hostile-input bounds.
func decodeSchema(d *recDecoder) (*db.Schema, error) {
	nRels, err := d.count(maxWireCount, "relation")
	if err != nil {
		return nil, err
	}
	rels := make([]*db.RelationSchema, 0, minU64(nRels, 1024))
	for i := uint64(0); i < nRels; i++ {
		name, err := d.str()
		if err != nil {
			return nil, err
		}
		nAttrs, err := d.count(maxWireArity, "attribute")
		if err != nil {
			return nil, err
		}
		attrs := make([]db.Attribute, nAttrs)
		for j := range attrs {
			if attrs[j].Name, err = d.str(); err != nil {
				return nil, err
			}
			kind, err := d.byte()
			if err != nil {
				return nil, err
			}
			attrs[j].Kind = db.Kind(kind)
		}
		rel, err := db.NewRelationSchema(name, attrs...)
		if err != nil {
			return nil, err
		}
		rels = append(rels, rel)
	}
	return db.NewSchema(rels...)
}

// writeMeta persists the store identity via temp file + fsync + atomic
// rename, like every other durable write in this package.
func writeMeta(fs FS, dir string, mode engine.Mode, schema *db.Schema, hasInit bool) error {
	var e recEncoder
	e.buf.WriteString(metaMagic)
	e.byte(byte(mode))
	if hasInit {
		e.byte(1)
	} else {
		e.byte(0)
	}
	encodeSchema(&e, schema)
	tmp := filepath.Join(dir, "META.tmp")
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(e.buf.Bytes()); err != nil {
		f.Close()
		_ = fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		_ = fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = fs.Remove(tmp)
		return err
	}
	if err := fs.Rename(tmp, filepath.Join(dir, metaName)); err != nil {
		_ = fs.Remove(tmp)
		return err
	}
	return fs.SyncDir(dir)
}

// readMeta loads the store identity; errNoMeta when absent.
func readMeta(fs FS, dir string) (*metaInfo, error) {
	data, err := fs.ReadFile(filepath.Join(dir, metaName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, errNoMeta
		}
		return nil, err
	}
	if len(data) < len(metaMagic) || string(data[:len(metaMagic)]) != metaMagic {
		return nil, fmt.Errorf("%w: bad META magic", ErrCorrupt)
	}
	d := &recDecoder{r: bytes.NewReader(data[len(metaMagic):])}
	mode, err := d.byte()
	if err != nil {
		return nil, fmt.Errorf("%w: truncated META", ErrCorrupt)
	}
	hasInit, err := d.byte()
	if err != nil {
		return nil, fmt.Errorf("%w: truncated META", ErrCorrupt)
	}
	schema, err := decodeSchema(d)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return &metaInfo{mode: engine.Mode(mode), schema: schema, hasInit: hasInit == 1}, nil
}
