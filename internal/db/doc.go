// Package db is the relational substrate of hyperprov: schemas, typed
// tuples, hyperplane selection patterns, and the three hyperplane update
// queries of Abiteboul and Vianu's domain-based fragment — insertion,
// deletion and modification — together with transactions (sequences of
// updates) and a plain, provenance-free in-memory database that defines
// the ground-truth set semantics.
//
// Hyperplane queries select tuples by inspecting individual attribute
// values only: every selection condition is AttributeName op constant
// with op ∈ {=, ≠}, and every modification sets attributes to constants.
// This is the SQL fragment identified in Section 2 of the paper
// (Bourhis, Deutch, Moskovitch, SIGMOD 2020) and originally in Karabeg
// and Vianu's axiomatization work. Pattern validation rejects anything
// outside the fragment (repeated variables, non-constant assignments).
package db
