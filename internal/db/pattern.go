package db

import (
	"fmt"
	"strings"
)

// Term is one position of a hyperplane selection pattern: either a
// constant (the attribute must equal it) or a variable, optionally
// restricted by disequalities (the attribute must differ from each
// listed constant). This realizes the paper's u-tuples R(u) with
// [A ≠ a] annotations.
type Term struct {
	isConst bool
	value   Value
	varName string
	notEq   []Value
}

// Const returns a constant term.
func Const(v Value) Term { return Term{isConst: true, value: v} }

// AnyVar returns an unrestricted variable term with the given name
// (names are informational; hyperplane patterns cannot repeat variables).
func AnyVar(name string) Term { return Term{varName: name} }

// VarNotEq returns a variable term restricted by disequalities: the
// attribute may take any value except the listed ones.
func VarNotEq(name string, notEq ...Value) Term {
	return Term{varName: name, notEq: notEq}
}

// IsConst reports whether the term is a constant.
func (t Term) IsConst() bool { return t.isConst }

// Value returns the constant of a constant term.
func (t Term) Value() Value { return t.value }

// VarName returns the variable name of a variable term.
func (t Term) VarName() string { return t.varName }

// NotEq returns the disequality constants of a variable term. The
// returned slice must not be modified.
func (t Term) NotEq() []Value { return t.notEq }

// MatchesValue reports whether the attribute value satisfies the term.
func (t Term) MatchesValue(v Value) bool {
	if t.isConst {
		return t.value == v
	}
	for _, ne := range t.notEq {
		if ne == v {
			return false
		}
	}
	return true
}

// String renders the term: a constant, or "x", or "[x != a, x != b]".
func (t Term) String() string {
	if t.isConst {
		return t.value.String()
	}
	name := t.varName
	if name == "" {
		name = "_"
	}
	if len(t.notEq) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteByte('[')
	for i, ne := range t.notEq {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s != %s", name, ne)
	}
	b.WriteByte(']')
	return b.String()
}

// Pattern is a hyperplane selection: one term per attribute. A tuple
// satisfies the pattern iff every attribute satisfies its term
// independently — the defining property of the domain-based fragment.
type Pattern []Term

// Matches reports whether the tuple satisfies the pattern. The tuple
// must have the pattern's arity.
func (p Pattern) Matches(t Tuple) bool {
	for i, term := range p {
		if !term.MatchesValue(t[i]) {
			return false
		}
	}
	return true
}

// Validate checks that the pattern conforms to the relation schema and
// stays inside the hyperplane fragment: correct arity, constants and
// disequalities of the right kinds, and no repeated variable names
// (repeating a variable would express an inter-attribute equality, which
// hyperplane queries cannot).
func (p Pattern) Validate(r *RelationSchema) error {
	if len(p) != len(r.Attrs) {
		return fmt.Errorf("db: pattern on %s has arity %d, want %d", r.Name, len(p), len(r.Attrs))
	}
	for i, term := range p {
		attr := r.Attrs[i]
		if term.isConst {
			if term.value.Kind() != attr.Kind {
				return fmt.Errorf("db: pattern constant %v for attribute %s has kind %v, want %v",
					term.value, attr.Name, term.value.Kind(), attr.Kind)
			}
			continue
		}
		if term.varName != "" && term.varName != "_" {
			// Quadratic over earlier terms instead of a map: patterns are
			// relation-arity-sized, and Validate sits on the zero-allocation
			// read path (Select/SelectEach validate per call).
			for j := 0; j < i; j++ {
				if !p[j].isConst && p[j].varName == term.varName {
					return fmt.Errorf("db: pattern on %s repeats variable %s (outside the hyperplane fragment)", r.Name, term.varName)
				}
			}
		}
		for _, ne := range term.notEq {
			if ne.Kind() != attr.Kind {
				return fmt.Errorf("db: disequality constant %v for attribute %s has kind %v, want %v",
					ne, attr.Name, ne.Kind(), attr.Kind)
			}
		}
	}
	return nil
}

// String renders "(t1, t2, ...)".
func (p Pattern) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, t := range p {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	b.WriteByte(')')
	return b.String()
}

// ConstPattern builds the pattern that matches exactly the given tuple.
func ConstPattern(t Tuple) Pattern {
	p := make(Pattern, len(t))
	for i, v := range t {
		p[i] = Const(v)
	}
	return p
}

// AllPattern builds the pattern that matches every tuple of the given
// arity.
func AllPattern(arity int) Pattern {
	p := make(Pattern, arity)
	for i := range p {
		p[i] = AnyVar(fmt.Sprintf("x%d", i))
	}
	return p
}
