package db_test

import (
	"strings"
	"testing"

	"hyperprov/internal/db"
)

func TestAttrCondHoldsAndString(t *testing.T) {
	eq := db.AttrCond{Left: 0, Right: 2}
	ne := db.AttrCond{Left: 0, Right: 2, Neq: true}
	diag := db.Tuple{db.I(3), db.S("x"), db.I(3)}
	off := db.Tuple{db.I(3), db.S("x"), db.I(4)}
	if !eq.Holds(diag) || eq.Holds(off) {
		t.Error("equality condition misbehaves")
	}
	if ne.Holds(diag) || !ne.Holds(off) {
		t.Error("disequality condition misbehaves")
	}
	if eq.String() != "#0 = #2" || ne.String() != "#0 != #2" {
		t.Errorf("String = %q / %q", eq.String(), ne.String())
	}
}

func TestWithCondsDoesNotAliasAndMatches(t *testing.T) {
	base := db.Delete("Products", db.AllPattern(3))
	if !base.IsHyperplane() {
		t.Error("plain update must be hyperplane")
	}
	schema := db.MustSchema(db.MustRelationSchema("R",
		db.Attribute{Name: "a", Kind: db.KindInt},
		db.Attribute{Name: "b", Kind: db.KindInt},
	))
	u := db.Delete("R", db.AllPattern(2))
	c1 := u.WithConds(db.AttrCond{Left: 0, Right: 1})
	c2 := c1.WithConds(db.AttrCond{Left: 0, Right: 1, Neq: true})
	if len(c1.Conds) != 1 || len(c2.Conds) != 2 {
		t.Fatalf("WithConds aliasing: %d / %d", len(c1.Conds), len(c2.Conds))
	}
	if err := c1.Validate(schema); err != nil {
		t.Fatal(err)
	}
	diag := db.Tuple{db.I(1), db.I(1)}
	if !c1.MatchesTuple(diag) || c2.MatchesTuple(diag) {
		t.Error("MatchesTuple with conditions misbehaves")
	}
	// Pattern mismatch short-circuits.
	sel := db.Pattern{db.Const(db.I(9)), db.AnyVar("b")}
	u2 := db.Delete("R", sel).WithConds(db.AttrCond{Left: 0, Right: 1})
	if u2.MatchesTuple(diag) {
		t.Error("pattern mismatch must override conditions")
	}
}

func TestAccessorsAndHelpers(t *testing.T) {
	term := db.Const(db.I(7))
	if !term.IsConst() || term.Value() != db.I(7) {
		t.Error("Const accessors broken")
	}
	v := db.VarNotEq("x", db.I(1), db.I(2))
	if v.IsConst() || v.VarName() != "x" || len(v.NotEq()) != 2 {
		t.Error("VarNotEq accessors broken")
	}
	if got := v.String(); !strings.Contains(got, "x != 1") || !strings.Contains(got, "x != 2") {
		t.Errorf("Term.String = %q", got)
	}
	p := db.ConstPattern(db.Tuple{db.I(1), db.I(2)})
	if !p.Matches(db.Tuple{db.I(1), db.I(2)}) || p.Matches(db.Tuple{db.I(1), db.I(3)}) {
		t.Error("ConstPattern broken")
	}
	tup := db.NewTuple(db.I(1), db.S("a"))
	if len(tup) != 2 || !tup.Equal(db.Tuple{db.I(1), db.S("a")}) {
		t.Error("NewTuple broken")
	}
	mod := db.Modify("R", db.AllPattern(2), []db.SetClause{db.Keep(), db.SetTo(db.I(5))})
	if !mod.IsIdentityOn(db.Tuple{db.I(0), db.I(5)}) || mod.IsIdentityOn(db.Tuple{db.I(0), db.I(6)}) {
		t.Error("IsIdentityOn broken")
	}
	txn := db.Transaction{Label: "p", Updates: []db.Update{mod}}
	if txn.NumQueries() != 1 {
		t.Error("NumQueries broken")
	}
}

func TestInstanceEachAndDatabaseHelpers(t *testing.T) {
	d := productsDB(t)
	if d.Instance("Products").Schema().Name != "Products" {
		t.Error("Instance.Schema broken")
	}
	n := 0
	d.Instance("Products").Each(func(db.Tuple) { n++ })
	if n != 4 {
		t.Errorf("Each visited %d rows", n)
	}
	other := productsDB(t)
	if err := other.ApplyAll([]db.Transaction{{Label: "p", Updates: []db.Update{
		db.Delete("Products", db.AllPattern(3)),
	}}}); err != nil {
		t.Fatal(err)
	}
	diff := d.Diff(other)
	if !strings.Contains(diff, "only on left") {
		t.Errorf("Diff output: %q", diff)
	}
	if d.Diff(d.Clone()) != "" {
		t.Error("Diff of equal databases must be empty")
	}
}
