package db

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind is the type of an attribute value.
type Kind uint8

const (
	// KindString is a string-valued attribute.
	KindString Kind = iota
	// KindInt is a 64-bit integer attribute.
	KindInt
	// KindFloat is a 64-bit float attribute (prices, amounts).
	KindFloat
)

// String names the kind as used in CSV headers ("string", "int", "float").
func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// ParseKind parses the names produced by Kind.String.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "string":
		return KindString, nil
	case "int":
		return KindInt, nil
	case "float":
		return KindFloat, nil
	default:
		return 0, fmt.Errorf("db: unknown kind %q", s)
	}
}

// Value is a typed attribute value: a kind tag plus one payload word.
// Strings are interned into the global string table and carry their
// uint32 id; ints carry the two's-complement bits; floats carry their
// IEEE-754 bits. Values are comparable with == (two values are the same
// iff they have the same kind and payload word), which makes hyperplane
// equality and disequality tests a single integer comparison and keeps
// tuples flat comparable words.
//
// Float equality is bitwise: distinct NaN payloads differ, and -0 != 0.
// This matches the Key() encoding (which already rendered -0 and 0
// differently) rather than IEEE == semantics.
type Value struct {
	kind Kind
	bits uint64
}

// S returns a string value, interning the payload.
func S(v string) Value { return Value{kind: KindString, bits: uint64(internString(v))} }

// I returns an integer value.
func I(v int64) Value { return Value{kind: KindInt, bits: uint64(v)} }

// F returns a float value.
func F(v float64) Value { return Value{kind: KindFloat, bits: math.Float64bits(v)} }

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// Str returns the payload of a string value ("" for other kinds).
func (v Value) Str() string {
	if v.kind != KindString {
		return ""
	}
	return lookupString(uint32(v.bits))
}

// Int returns the payload of an integer value (0 for other kinds).
func (v Value) Int() int64 {
	if v.kind != KindInt {
		return 0
	}
	return int64(v.bits)
}

// Float returns the payload of a float value (0 for other kinds).
func (v Value) Float() float64 {
	if v.kind != KindFloat {
		return 0
	}
	return math.Float64frombits(v.bits)
}

// String renders the value for display.
func (v Value) String() string {
	switch v.kind {
	case KindString:
		return v.Str()
	case KindInt:
		return strconv.FormatInt(int64(v.bits), 10)
	case KindFloat:
		return strconv.FormatFloat(math.Float64frombits(v.bits), 'g', -1, 64)
	default:
		return "?"
	}
}

// ParseValue parses the representation produced by String back into a
// value of the given kind (used by the CSV loader and the query parsers).
func ParseValue(kind Kind, s string) (Value, error) {
	switch kind {
	case KindString:
		return S(s), nil
	case KindInt:
		i, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("db: bad int %q: %v", s, err)
		}
		return I(i), nil
	case KindFloat:
		f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return Value{}, fmt.Errorf("db: bad float %q: %v", s, err)
		}
		return F(f), nil
	default:
		return Value{}, fmt.Errorf("db: unknown kind %v", kind)
	}
}

// appendKey appends an unambiguous encoding of the value to b, used to
// key tuples in hash maps and in the snapshot/WAL formats. The encoding
// is unchanged by interning: it always renders the payload itself.
func (v Value) appendKey(b *strings.Builder) {
	switch v.kind {
	case KindString:
		s := v.Str()
		b.WriteByte('s')
		b.WriteString(strconv.Itoa(len(s)))
		b.WriteByte(':')
		b.WriteString(s)
	case KindInt:
		b.WriteByte('i')
		b.WriteString(strconv.FormatInt(int64(v.bits), 10))
	case KindFloat:
		b.WriteByte('f')
		b.WriteString(strconv.FormatFloat(math.Float64frombits(v.bits), 'g', -1, 64))
	}
}
