package db

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind is the type of an attribute value.
type Kind uint8

const (
	// KindString is a string-valued attribute.
	KindString Kind = iota
	// KindInt is a 64-bit integer attribute.
	KindInt
	// KindFloat is a 64-bit float attribute (prices, amounts).
	KindFloat
)

// String names the kind as used in CSV headers ("string", "int", "float").
func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// ParseKind parses the names produced by Kind.String.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "string":
		return KindString, nil
	case "int":
		return KindInt, nil
	case "float":
		return KindFloat, nil
	default:
		return 0, fmt.Errorf("db: unknown kind %q", s)
	}
}

// Value is a typed attribute value. Values are comparable with == (two
// values are the same iff they have the same kind and payload), which
// makes hyperplane equality and disequality tests direct.
type Value struct {
	kind Kind
	s    string
	i    int64
	f    float64
}

// S returns a string value.
func S(v string) Value { return Value{kind: KindString, s: v} }

// I returns an integer value.
func I(v int64) Value { return Value{kind: KindInt, i: v} }

// F returns a float value.
func F(v float64) Value { return Value{kind: KindFloat, f: v} }

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// Str returns the payload of a string value.
func (v Value) Str() string { return v.s }

// Int returns the payload of an integer value.
func (v Value) Int() int64 { return v.i }

// Float returns the payload of a float value.
func (v Value) Float() float64 { return v.f }

// String renders the value for display.
func (v Value) String() string {
	switch v.kind {
	case KindString:
		return v.s
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	default:
		return "?"
	}
}

// ParseValue parses the representation produced by String back into a
// value of the given kind (used by the CSV loader and the query parsers).
func ParseValue(kind Kind, s string) (Value, error) {
	switch kind {
	case KindString:
		return S(s), nil
	case KindInt:
		i, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("db: bad int %q: %v", s, err)
		}
		return I(i), nil
	case KindFloat:
		f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return Value{}, fmt.Errorf("db: bad float %q: %v", s, err)
		}
		return F(f), nil
	default:
		return Value{}, fmt.Errorf("db: unknown kind %v", kind)
	}
}

// appendKey appends an unambiguous encoding of the value to b, used to
// key tuples in hash maps.
func (v Value) appendKey(b *strings.Builder) {
	switch v.kind {
	case KindString:
		b.WriteByte('s')
		b.WriteString(strconv.Itoa(len(v.s)))
		b.WriteByte(':')
		b.WriteString(v.s)
	case KindInt:
		b.WriteByte('i')
		b.WriteString(strconv.FormatInt(v.i, 10))
	case KindFloat:
		b.WriteByte('f')
		b.WriteString(strconv.FormatFloat(v.f, 'g', -1, 64))
	}
}
