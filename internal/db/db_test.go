package db_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"hyperprov/internal/db"
)

// productsSchema is the running example of the paper (Figure 1).
func productsSchema() *db.Schema {
	return db.MustSchema(db.MustRelationSchema("Products",
		db.Attribute{Name: "Product", Kind: db.KindString},
		db.Attribute{Name: "Category", Kind: db.KindString},
		db.Attribute{Name: "Price", Kind: db.KindInt},
	))
}

func productsDB(t *testing.T) *db.Database {
	t.Helper()
	d := db.NewDatabase(productsSchema())
	rows := []db.Tuple{
		{db.S("Kids mnt bike"), db.S("Sport"), db.I(120)},
		{db.S("Tennis Racket"), db.S("Sport"), db.I(70)},
		{db.S("Kids mnt bike"), db.S("Kids"), db.I(120)},
		{db.S("Children sneakers"), db.S("Fashion"), db.I(40)},
	}
	for _, r := range rows {
		if err := d.InsertTuple("Products", r); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestValues(t *testing.T) {
	if db.S("a") == db.S("b") || db.I(1) == db.I(2) || db.I(0) == db.F(0) {
		t.Error("distinct values compare equal")
	}
	if db.S("a") != db.S("a") {
		t.Error("equal values compare unequal")
	}
	for _, v := range []db.Value{db.S("hello world"), db.I(-42), db.F(3.25)} {
		back, err := db.ParseValue(v.Kind(), v.String())
		if err != nil || back != v {
			t.Errorf("ParseValue(%v) = %v, %v", v, back, err)
		}
	}
	if _, err := db.ParseValue(db.KindInt, "xyz"); err == nil {
		t.Error("ParseValue must reject bad ints")
	}
}

func TestTupleKeyInjective(t *testing.T) {
	// Keys must distinguish tuples that naive string joins would not.
	pairs := [][2]db.Tuple{
		{{db.S("ab"), db.S("c")}, {db.S("a"), db.S("bc")}},
		{{db.S("1")}, {db.I(1)}},
		{{db.S("")}, {db.S(" ")}},
		{{db.I(12), db.I(3)}, {db.I(1), db.I(23)}},
	}
	for _, p := range pairs {
		if p[0].Key() == p[1].Key() {
			t.Errorf("tuples %v and %v share key %q", p[0], p[1], p[0].Key())
		}
	}
	if (db.Tuple{db.S("x"), db.I(1)}).Key() != (db.Tuple{db.S("x"), db.I(1)}).Key() {
		t.Error("equal tuples must share keys")
	}
}

func TestTupleKeyInjectiveProperty(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	randTuple := func() db.Tuple {
		n := 1 + r.Intn(3)
		tup := make(db.Tuple, n)
		for i := range tup {
			switch r.Intn(3) {
			case 0:
				tup[i] = db.S(string(rune('a'+r.Intn(4))) + strings.Repeat("|", r.Intn(3)))
			case 1:
				tup[i] = db.I(int64(r.Intn(5)))
			default:
				tup[i] = db.F(float64(r.Intn(3)) / 2)
			}
		}
		return tup
	}
	f := func() bool {
		a, b := randTuple(), randTuple()
		return a.Equal(b) == (a.Key() == b.Key())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPatternMatching(t *testing.T) {
	// Example 2.1: products([p ≠ "Kids mnt bike"], "Sport", c).
	sel := db.Pattern{
		db.VarNotEq("p", db.S("Kids mnt bike")),
		db.Const(db.S("Sport")),
		db.AnyVar("c"),
	}
	if !sel.Matches(db.Tuple{db.S("Tennis Racket"), db.S("Sport"), db.I(70)}) {
		t.Error("Tennis Racket should match (Example 2.1)")
	}
	if sel.Matches(db.Tuple{db.S("Kids mnt bike"), db.S("Sport"), db.I(120)}) {
		t.Error("Kids mnt bike must not match the disequality")
	}
	if sel.Matches(db.Tuple{db.S("Tennis Racket"), db.S("Kids"), db.I(70)}) {
		t.Error("category mismatch must not match")
	}
}

func TestPatternValidate(t *testing.T) {
	rel := productsSchema().Relation("Products")
	good := db.Pattern{db.AnyVar("a"), db.Const(db.S("Sport")), db.AnyVar("b")}
	if err := good.Validate(rel); err != nil {
		t.Errorf("valid pattern rejected: %v", err)
	}
	badArity := db.Pattern{db.AnyVar("a")}
	if err := badArity.Validate(rel); err == nil {
		t.Error("arity mismatch accepted")
	}
	badKind := db.Pattern{db.AnyVar("a"), db.Const(db.I(3)), db.AnyVar("b")}
	if err := badKind.Validate(rel); err == nil {
		t.Error("kind mismatch accepted")
	}
	repeated := db.Pattern{db.AnyVar("a"), db.AnyVar("a"), db.AnyVar("b")}
	if err := repeated.Validate(rel); err == nil {
		t.Error("repeated variable accepted (breaks the hyperplane fragment)")
	}
	badNE := db.Pattern{db.VarNotEq("a", db.I(1)), db.AnyVar("b"), db.AnyVar("c")}
	if err := badNE.Validate(rel); err == nil {
		t.Error("disequality kind mismatch accepted")
	}
}

func TestInsertDeleteModifyExamples(t *testing.T) {
	// Examples 2.2–2.4 run as a transaction and produce Figure 1b.
	d := productsDB(t)
	txn := db.Transaction{Label: "p", Updates: []db.Update{
		db.Insert("Products", db.Tuple{db.S("Lego bricks"), db.S("Kids"), db.I(90)}),
		db.Delete("Products", db.Pattern{db.AnyVar("a"), db.Const(db.S("Fashion")), db.AnyVar("b")}),
		db.Modify("Products",
			db.Pattern{db.Const(db.S("Kids mnt bike")), db.AnyVar("a"), db.AnyVar("b")},
			[]db.SetClause{db.Keep(), db.SetTo(db.S("Bicycles")), db.Keep()}),
	}}
	if err := txn.Validate(d.Schema()); err != nil {
		t.Fatal(err)
	}
	if err := d.ApplyTransaction(&txn); err != nil {
		t.Fatal(err)
	}
	in := d.Instance("Products")
	if in.Len() != 3 {
		t.Fatalf("got %d tuples, want 3 (Figure 1b): %v", in.Len(), in.Tuples())
	}
	want := []db.Tuple{
		{db.S("Kids mnt bike"), db.S("Bicycles"), db.I(120)},
		{db.S("Tennis Racket"), db.S("Sport"), db.I(70)},
		{db.S("Lego bricks"), db.S("Kids"), db.I(90)},
	}
	for _, w := range want {
		if !in.Contains(w) {
			t.Errorf("missing tuple %v", w)
		}
	}
}

func TestModifyCollapsesTuples(t *testing.T) {
	// Example 2.4: both Kids mnt bike tuples collapse into one.
	d := productsDB(t)
	mod := db.Modify("Products",
		db.Pattern{db.Const(db.S("Kids mnt bike")), db.AnyVar("a"), db.AnyVar("b")},
		[]db.SetClause{db.Keep(), db.SetTo(db.S("Bicycles")), db.Keep()})
	if err := d.Apply(mod); err != nil {
		t.Fatal(err)
	}
	in := d.Instance("Products")
	if in.Len() != 3 {
		t.Fatalf("got %d tuples, want 3 after collapse", in.Len())
	}
	if !in.Contains(db.Tuple{db.S("Kids mnt bike"), db.S("Bicycles"), db.I(120)}) {
		t.Error("collapsed tuple missing")
	}
}

func TestModifySelfMapIsNoOp(t *testing.T) {
	d := productsDB(t)
	before := d.Clone()
	// Set Category of Sport products to Sport: identity.
	mod := db.Modify("Products",
		db.Pattern{db.AnyVar("a"), db.Const(db.S("Sport")), db.AnyVar("b")},
		[]db.SetClause{db.Keep(), db.SetTo(db.S("Sport")), db.Keep()})
	if err := d.Apply(mod); err != nil {
		t.Fatal(err)
	}
	if !d.Equal(before) {
		t.Errorf("identity modify changed the database:\n%s", d.Diff(before))
	}
}

func TestDeleteOnEmptySelection(t *testing.T) {
	d := productsDB(t)
	before := d.NumTuples()
	del := db.Delete("Products", db.Pattern{db.AnyVar("a"), db.Const(db.S("Toys")), db.AnyVar("b")})
	if err := d.Apply(del); err != nil {
		t.Fatal(err)
	}
	if d.NumTuples() != before {
		t.Error("deleting a non-matching selection changed the database")
	}
}

func TestInsertIdempotent(t *testing.T) {
	d := productsDB(t)
	row := db.Tuple{db.S("Tennis Racket"), db.S("Sport"), db.I(70)}
	if err := d.Apply(db.Insert("Products", row)); err != nil {
		t.Fatal(err)
	}
	if d.Instance("Products").Len() != 4 {
		t.Error("set semantics: re-inserting an existing tuple must not grow the relation")
	}
}

func TestUpdateValidate(t *testing.T) {
	s := productsSchema()
	bad := []db.Update{
		db.Insert("Nope", db.Tuple{db.S("x")}),
		db.Insert("Products", db.Tuple{db.S("x")}),
		db.Insert("Products", db.Tuple{db.S("x"), db.S("y"), db.S("z")}),
		db.Modify("Products", db.AllPattern(3), []db.SetClause{db.Keep()}),
		db.Modify("Products", db.AllPattern(3), []db.SetClause{db.Keep(), db.SetTo(db.I(1)), db.Keep()}),
	}
	for i, u := range bad {
		if err := u.Validate(s); err == nil {
			t.Errorf("bad update %d accepted: %v", i, u)
		}
	}
	good := db.Modify("Products", db.AllPattern(3), []db.SetClause{db.Keep(), db.SetTo(db.S("All")), db.Keep()})
	if err := good.Validate(s); err != nil {
		t.Errorf("good update rejected: %v", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	d := productsDB(t)
	c := d.Clone()
	if err := c.Apply(db.Delete("Products", db.AllPattern(3))); err != nil {
		t.Fatal(err)
	}
	if c.NumTuples() != 0 || d.NumTuples() != 4 {
		t.Error("Clone must be independent")
	}
	if d.Equal(c) {
		t.Error("Equal must detect the difference")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := productsDB(t)
	var buf bytes.Buffer
	if err := db.WriteCSV(&buf, d.Instance("Products")); err != nil {
		t.Fatal(err)
	}
	back, err := db.LoadCSVRelation("Products", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(d) {
		t.Errorf("CSV round trip lost tuples:\n%s", back.Diff(d))
	}
	// And into a pre-declared schema.
	d2 := db.NewDatabase(productsSchema())
	n, err := db.ReadCSV(d2, "Products", bytes.NewReader(buf.Bytes()))
	if err != nil || n != 4 {
		t.Fatalf("ReadCSV = %d, %v", n, err)
	}
	if !d2.Equal(d) {
		t.Error("ReadCSV into schema diverged")
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := db.LoadCSVRelation("R", strings.NewReader("a,b\n1,2\n")); err == nil {
		t.Error("header without kinds accepted")
	}
	if _, err := db.LoadCSVRelation("R", strings.NewReader("a:int\nxyz\n")); err == nil {
		t.Error("bad int accepted")
	}
}

func TestUpdateString(t *testing.T) {
	ins := db.Insert("Products", db.Tuple{db.S("Lego bricks"), db.S("Kids"), db.I(90)})
	if got := ins.String(); !strings.Contains(got, "Products+") {
		t.Errorf("insert String = %q", got)
	}
	del := db.Delete("Products", db.Pattern{db.AnyVar("a"), db.Const(db.S("Fashion")), db.AnyVar("b")})
	if got := del.String(); !strings.Contains(got, "Products-") || !strings.Contains(got, "Fashion") {
		t.Errorf("delete String = %q", got)
	}
	mod := db.Modify("Products", db.AllPattern(3), []db.SetClause{db.Keep(), db.SetTo(db.S("X")), db.Keep()})
	if got := mod.String(); !strings.Contains(got, "ProductsM") {
		t.Errorf("modify String = %q", got)
	}
}

func TestSchemaHelpers(t *testing.T) {
	s := productsSchema()
	rel := s.Relation("Products")
	if rel.AttrIndex("Category") != 1 || rel.AttrIndex("Nope") != -1 {
		t.Error("AttrIndex misbehaves")
	}
	if rel.Arity() != 3 {
		t.Error("Arity misbehaves")
	}
	if got := rel.String(); !strings.Contains(got, "Category:string") {
		t.Errorf("RelationSchema.String = %q", got)
	}
	if _, err := db.NewRelationSchema("R", db.Attribute{Name: "a"}, db.Attribute{Name: "a"}); err == nil {
		t.Error("duplicate attribute accepted")
	}
	if _, err := db.NewSchema(rel, rel); err == nil {
		t.Error("duplicate relation accepted")
	}
}
