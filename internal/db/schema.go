package db

import (
	"fmt"
	"strings"
)

// Attribute is a named, typed column of a relation.
type Attribute struct {
	Name string
	Kind Kind
}

// RelationSchema describes one relation: its name and ordered attributes.
type RelationSchema struct {
	Name  string
	Attrs []Attribute
}

// NewRelationSchema builds a relation schema, validating that attribute
// names are non-empty and unique.
func NewRelationSchema(name string, attrs ...Attribute) (*RelationSchema, error) {
	if name == "" {
		return nil, fmt.Errorf("db: relation name must not be empty")
	}
	seen := make(map[string]struct{}, len(attrs))
	for _, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("db: relation %s has an unnamed attribute", name)
		}
		if _, dup := seen[a.Name]; dup {
			return nil, fmt.Errorf("db: relation %s has duplicate attribute %s", name, a.Name)
		}
		seen[a.Name] = struct{}{}
	}
	return &RelationSchema{Name: name, Attrs: attrs}, nil
}

// MustRelationSchema is NewRelationSchema that panics on error; for
// statically known schemas.
func MustRelationSchema(name string, attrs ...Attribute) *RelationSchema {
	r, err := NewRelationSchema(name, attrs...)
	if err != nil {
		panic(err)
	}
	return r
}

// Arity reports the number of attributes.
func (r *RelationSchema) Arity() int { return len(r.Attrs) }

// AttrIndex returns the position of the named attribute, or -1.
func (r *RelationSchema) AttrIndex(name string) int {
	for i, a := range r.Attrs {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// String renders "Name(attr:kind, ...)".
func (r *RelationSchema) String() string {
	var b strings.Builder
	b.WriteString(r.Name)
	b.WriteByte('(')
	for i, a := range r.Attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Name)
		b.WriteByte(':')
		b.WriteString(a.Kind.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Schema is a set of relation schemas keyed by relation name.
type Schema struct {
	byName map[string]*RelationSchema
	order  []string
}

// NewSchema builds a schema from relation schemas, rejecting duplicates.
func NewSchema(rels ...*RelationSchema) (*Schema, error) {
	s := &Schema{byName: make(map[string]*RelationSchema, len(rels))}
	for _, r := range rels {
		if _, dup := s.byName[r.Name]; dup {
			return nil, fmt.Errorf("db: duplicate relation %s", r.Name)
		}
		s.byName[r.Name] = r
		s.order = append(s.order, r.Name)
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error.
func MustSchema(rels ...*RelationSchema) *Schema {
	s, err := NewSchema(rels...)
	if err != nil {
		panic(err)
	}
	return s
}

// Relation returns the schema of the named relation, or nil.
func (s *Schema) Relation(name string) *RelationSchema { return s.byName[name] }

// Names returns the relation names in declaration order. The returned
// slice must not be modified.
func (s *Schema) Names() []string { return s.order }
