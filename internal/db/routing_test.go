package db

import (
	"fmt"
	"testing"
)

func TestShardOf(t *testing.T) {
	keys := make([]string, 200)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d|%d", i, i*7)
	}
	for _, k := range keys {
		if got := ShardOf(k, 1); got != 0 {
			t.Fatalf("ShardOf(%q, 1) = %d", k, got)
		}
		if got := ShardOf(k, 0); got != 0 {
			t.Fatalf("ShardOf(%q, 0) = %d", k, got)
		}
		for _, n := range []int{2, 3, 8, 16} {
			got := ShardOf(k, n)
			if got < 0 || got >= n {
				t.Fatalf("ShardOf(%q, %d) = %d out of range", k, n, got)
			}
			if again := ShardOf(k, n); again != got {
				t.Fatalf("ShardOf(%q, %d) not deterministic: %d then %d", k, n, got, again)
			}
		}
	}
	// The hash must actually spread keys: with 200 keys over 8 shards an
	// empty shard would indicate a broken mix.
	counts := make([]int, 8)
	for _, k := range keys {
		counts[ShardOf(k, 8)]++
	}
	for s, c := range counts {
		if c == 0 {
			t.Errorf("shard %d received no keys out of %d", s, len(keys))
		}
	}
}

func TestPinnedTuple(t *testing.T) {
	full := Pattern{Const(S("a")), Const(I(3))}
	tu, ok := full.PinnedTuple()
	if !ok || !tu.Equal(Tuple{S("a"), I(3)}) {
		t.Fatalf("fully constant pattern not pinned: %v, %v", tu, ok)
	}
	for name, p := range map[string]Pattern{
		"free variable": {Const(S("a")), AnyVar("x")},
		"disequality":   {Const(S("a")), VarNotEq("x", I(3))},
		"all free":      {AnyVar("x"), AnyVar("y")},
	} {
		if _, ok := p.PinnedTuple(); ok {
			t.Errorf("%s: pattern %v reported pinned", name, p)
		}
	}
}

func TestRouteKeys(t *testing.T) {
	row := Tuple{S("a"), I(3)}
	sel := ConstPattern(row)

	keys, ok := Insert("R", row).RouteKeys()
	if !ok || len(keys) != 1 || keys[0] != row.Key() {
		t.Fatalf("insert routes to %v, %v", keys, ok)
	}

	keys, ok = Delete("R", sel).RouteKeys()
	if !ok || len(keys) != 1 || keys[0] != row.Key() {
		t.Fatalf("pinned delete routes to %v, %v", keys, ok)
	}
	if _, ok := Delete("R", Pattern{Const(S("a")), AnyVar("x")}).RouteKeys(); ok {
		t.Fatal("unpinned delete reported routable")
	}

	mod := Modify("R", sel, []SetClause{Keep(), SetTo(I(9))})
	keys, ok = mod.RouteKeys()
	if !ok || len(keys) != 2 {
		t.Fatalf("pinned modify routes to %v, %v", keys, ok)
	}
	target := Tuple{S("a"), I(9)}
	if keys[0] != row.Key() || keys[1] != target.Key() {
		t.Fatalf("modify keys = %v, want [%q %q]", keys, row.Key(), target.Key())
	}
	if _, ok := Modify("R", Pattern{AnyVar("x"), Const(I(3))}, []SetClause{Keep(), SetTo(I(9))}).RouteKeys(); ok {
		t.Fatal("unpinned modify reported routable")
	}
}
