package db

import (
	"fmt"
	"sort"
)

// Instance is one relation's extent under set semantics: a dense tuple
// slice for fast scans (hyperplane updates scan whole relations) plus a
// key index for O(1) membership; deletion swap-removes from the slice.
type Instance struct {
	rel   *RelationSchema
	list  []Tuple
	index map[string]int // Tuple.Key → position in list
}

// Schema returns the relation schema of the instance.
func (in *Instance) Schema() *RelationSchema { return in.rel }

// Len reports the number of tuples.
func (in *Instance) Len() int { return len(in.list) }

// Contains reports membership of the tuple.
func (in *Instance) Contains(t Tuple) bool {
	_, ok := in.index[t.Key()]
	return ok
}

// Each calls f for every tuple. Iteration order is unspecified; f must
// not mutate the instance.
func (in *Instance) Each(f func(t Tuple)) {
	for _, t := range in.list {
		f(t)
	}
}

// Tuples returns the tuples sorted by key (a deterministic order for
// display and tests). Keys are built once per tuple, not per comparison:
// engines seed their row order from this and sort 2n·log n fresh key
// strings would dominate whole-benchmark allocation.
func (in *Instance) Tuples() []Tuple {
	out := make([]Tuple, len(in.list))
	copy(out, in.list)
	keys := make([]string, len(out))
	for i := range out {
		keys[i] = out[i].Key()
	}
	// Keys are unique (set semantics), so this unstable sort yields the
	// same total order the previous by-key sort.Slice did.
	sort.Sort(&tuplesByKey{tuples: out, keys: keys})
	return out
}

type tuplesByKey struct {
	tuples []Tuple
	keys   []string
}

func (s *tuplesByKey) Len() int           { return len(s.tuples) }
func (s *tuplesByKey) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *tuplesByKey) Swap(i, j int) {
	s.tuples[i], s.tuples[j] = s.tuples[j], s.tuples[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

// put inserts or overwrites a tuple.
func (in *Instance) put(key string, t Tuple) {
	if i, ok := in.index[key]; ok {
		in.list[i] = t
		return
	}
	in.index[key] = len(in.list)
	in.list = append(in.list, t)
}

// remove deletes a tuple by key, swap-removing from the slice.
func (in *Instance) remove(key string) {
	i, ok := in.index[key]
	if !ok {
		return
	}
	last := len(in.list) - 1
	if i != last {
		in.list[i] = in.list[last]
		in.index[in.list[i].Key()] = i
	}
	in.list = in.list[:last]
	delete(in.index, key)
}

// Database is a plain, provenance-free in-memory database under set
// semantics. It defines the ground truth that the provenance engines'
// all-true valuation must agree with, and serves as the "No provenance"
// baseline of the paper's experiments.
type Database struct {
	schema    *Schema
	instances map[string]*Instance
}

// NewDatabase returns an empty database over the schema.
func NewDatabase(s *Schema) *Database {
	d := &Database{schema: s, instances: make(map[string]*Instance, len(s.Names()))}
	for _, name := range s.Names() {
		d.instances[name] = &Instance{rel: s.Relation(name), index: make(map[string]int)}
	}
	return d
}

// Schema returns the database schema.
func (d *Database) Schema() *Schema { return d.schema }

// Instance returns the named relation instance, or nil.
func (d *Database) Instance(rel string) *Instance { return d.instances[rel] }

// NumTuples reports the total number of tuples across all relations.
func (d *Database) NumTuples() int {
	n := 0
	for _, in := range d.instances {
		n += len(in.list)
	}
	return n
}

// InsertTuple adds a tuple directly (initial loading, not an update
// query).
func (d *Database) InsertTuple(rel string, t Tuple) error {
	in := d.instances[rel]
	if in == nil {
		return fmt.Errorf("db: unknown relation %s", rel)
	}
	if err := t.Conforms(in.rel); err != nil {
		return err
	}
	in.put(t.Key(), t)
	return nil
}

// Apply executes one hyperplane update query with set semantics.
func (d *Database) Apply(u Update) error {
	in := d.instances[u.Rel]
	if in == nil {
		return fmt.Errorf("db: unknown relation %s", u.Rel)
	}
	switch u.Kind {
	case OpInsert:
		in.put(u.Row.Key(), u.Row)
		return nil
	case OpDelete:
		var matched []Tuple
		for _, t := range in.list {
			if u.MatchesTuple(t) {
				matched = append(matched, t)
			}
		}
		for _, t := range matched {
			in.remove(t.Key())
		}
		return nil
	case OpModify:
		var matched []Tuple
		for _, t := range in.list {
			if u.MatchesTuple(t) {
				matched = append(matched, t)
			}
		}
		for _, t := range matched {
			in.remove(t.Key())
		}
		for _, t := range matched {
			nt := u.Target(t)
			in.put(nt.Key(), nt)
		}
		return nil
	default:
		return fmt.Errorf("db: unknown update kind %v", u.Kind)
	}
}

// ApplyTransaction executes every query of the transaction in order.
func (d *Database) ApplyTransaction(t *Transaction) error {
	for i := range t.Updates {
		if err := d.Apply(t.Updates[i]); err != nil {
			return fmt.Errorf("transaction %s, query %d: %w", t.Label, i, err)
		}
	}
	return nil
}

// ApplyAll executes a sequence of transactions.
func (d *Database) ApplyAll(txns []Transaction) error {
	for i := range txns {
		if err := d.ApplyTransaction(&txns[i]); err != nil {
			return err
		}
	}
	return nil
}

// Clone returns an independent copy of the database (tuples are shared;
// they are immutable by convention).
func (d *Database) Clone() *Database {
	c := &Database{schema: d.schema, instances: make(map[string]*Instance, len(d.instances))}
	for name, in := range d.instances {
		list := make([]Tuple, len(in.list))
		copy(list, in.list)
		index := make(map[string]int, len(in.index))
		for k, i := range in.index {
			index[k] = i
		}
		c.instances[name] = &Instance{rel: in.rel, list: list, index: index}
	}
	return c
}

// Equal reports whether two databases over the same schema contain the
// same tuples.
func (d *Database) Equal(o *Database) bool {
	if len(d.instances) != len(o.instances) {
		return false
	}
	for name, in := range d.instances {
		oin := o.instances[name]
		if oin == nil || len(in.list) != len(oin.list) {
			return false
		}
		for k := range in.index {
			if _, ok := oin.index[k]; !ok {
				return false
			}
		}
	}
	return true
}

// Diff returns a human-readable description of the first few differences
// between two databases, or "" when they are equal. For test failure
// messages.
func (d *Database) Diff(o *Database) string {
	out := ""
	count := 0
	add := func(s string) {
		if count < 8 {
			out += s + "\n"
		}
		count++
	}
	for _, name := range d.schema.Names() {
		in, oin := d.instances[name], o.instances[name]
		if oin == nil {
			add(fmt.Sprintf("relation %s missing on right", name))
			continue
		}
		for _, t := range in.list {
			if _, ok := oin.index[t.Key()]; !ok {
				add(fmt.Sprintf("%s: %v only on left", name, t))
			}
		}
		for _, t := range oin.list {
			if _, ok := in.index[t.Key()]; !ok {
				add(fmt.Sprintf("%s: %v only on right", name, t))
			}
		}
	}
	if count > 8 {
		out += fmt.Sprintf("... and %d more differences\n", count-8)
	}
	return out
}
