package db_test

// Property tests for the interned Value representation: a Value is a
// kind tag plus one payload word (string payloads become dense intern
// ids), so the representation must (a) round-trip every kind's payload
// exactly, (b) make Go's == coincide with semantic value equality
// within a kind and never hold across kinds, and (c) keep
// Tuple.Fingerprint/Key consistent with Equal. Randomized over many
// seeds because the string-intern table is shared process state: ids
// are assigned first-come, and equality must be stable no matter the
// interleaving of first sightings.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"hyperprov/internal/db"
)

func randString(r *rand.Rand) string {
	alpha := []rune("abcXYZ012ÄÖπ漢\x00 :,()")
	n := r.Intn(12)
	runes := make([]rune, n)
	for i := range runes {
		runes[i] = alpha[r.Intn(len(alpha))]
	}
	return string(runes)
}

func TestValueInterningRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		switch i % 3 {
		case 0:
			s := randString(r)
			v := db.S(s)
			if v.Kind() != db.KindString || v.Str() != s {
				t.Fatalf("S(%q) round-trips to %q", s, v.Str())
			}
			// Re-interning the same payload yields an ==-equal value
			// (dense ids are stable per payload).
			if w := db.S(s); w != v {
				t.Fatalf("S(%q) != S(%q): intern id not stable", s, s)
			}
		case 1:
			n := r.Int63() - r.Int63()
			v := db.I(n)
			if v.Kind() != db.KindInt || v.Int() != n {
				t.Fatalf("I(%d) round-trips to %d", n, v.Int())
			}
			if w := db.I(n); w != v {
				t.Fatalf("I(%d) not ==-stable", n)
			}
		case 2:
			f := math.Float64frombits(r.Uint64())
			v := db.F(f)
			if v.Kind() != db.KindFloat {
				t.Fatalf("F(%v) has kind %v", f, v.Kind())
			}
			got := v.Float()
			if math.Float64bits(got) != math.Float64bits(f) {
				t.Fatalf("F round-trip lost bits: %x vs %x", math.Float64bits(got), math.Float64bits(f))
			}
			if w := db.F(f); w != v {
				t.Fatalf("F(%v) not ==-stable", f)
			}
		}
	}
}

func TestValueEqualitySemantics(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	// Distinct payloads must compare unequal within a kind.
	seen := map[string]db.Value{}
	for i := 0; i < 500; i++ {
		s := randString(r)
		v := db.S(s)
		if prev, ok := seen[s]; ok && prev != v {
			t.Fatalf("same string %q interned to different values", s)
		}
		for o, w := range seen {
			if (o == s) != (w == v) {
				t.Fatalf("== disagrees with payload equality for %q vs %q", s, o)
			}
		}
		seen[s] = v
	}
	// Across kinds, == never holds — even when payload words collide
	// (I(n) and F with equal bits; S's small intern ids vs small ints).
	if db.S("1") == db.I(1) || db.I(1) == db.F(1) || db.S("") == db.I(0) {
		t.Fatal("values of different kinds compare equal")
	}
	one := db.F(1)
	if db.I(int64(math.Float64bits(1))) == one {
		t.Fatal("int with float's bit pattern compares equal to the float")
	}
	// Documented float edge semantics: bitwise, not IEEE.
	if db.F(math.Copysign(0, -1)) == db.F(0) {
		t.Fatal("-0 and 0 must differ (bitwise float equality)")
	}
	nan1 := db.F(math.NaN())
	if nan1 != db.F(math.NaN()) {
		t.Fatal("identical NaN payloads must compare equal (bitwise)")
	}
}

// TestTupleFingerprintKeyConsistency: Equal, == of the underlying
// values, Fingerprint and Key must all agree — the fingerprint is the
// hot-path identity (table probes, shard routing) and the key the
// durable one (snapshots, WAL), so a disagreement corrupts one store
// or the other.
func TestTupleFingerprintKeyConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	randTuple := func() db.Tuple {
		return db.Tuple{
			db.I(int64(r.Intn(50))),
			db.S(fmt.Sprintf("s%d", r.Intn(30))),
			db.F(float64(r.Intn(20)) / 4),
		}
	}
	tuples := make([]db.Tuple, 400)
	for i := range tuples {
		tuples[i] = randTuple()
	}
	for i, a := range tuples {
		if !a.Equal(a.Clone()) {
			t.Fatal("tuple not equal to its clone")
		}
		if a.Fingerprint() != a.Clone().Fingerprint() {
			t.Fatal("clone fingerprint differs")
		}
		for _, b := range tuples[:i] {
			eq := a.Equal(b)
			if eq != (a.Key() == b.Key()) {
				t.Fatalf("Equal=%v but key equality=%v for %v vs %v", eq, !eq, a, b)
			}
			if eq && a.Fingerprint() != b.Fingerprint() {
				t.Fatalf("equal tuples with different fingerprints: %v", a)
			}
		}
	}
	// Shard routing is total and consistent for every shard count.
	for _, shards := range []int{1, 2, 3, 7} {
		for _, tu := range tuples {
			got := db.ShardOfTuple(tu, shards)
			if got < 0 || got >= shards {
				t.Fatalf("ShardOfTuple out of range: %d of %d", got, shards)
			}
			if got != db.ShardOfFingerprint(tu.Fingerprint(), shards) {
				t.Fatal("ShardOfTuple disagrees with ShardOfFingerprint")
			}
		}
	}
}
