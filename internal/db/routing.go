package db

// Shard routing analysis for hyperplane updates. A hash-sharded engine
// partitions rows by Tuple.Key; an update can be routed to a single
// shard exactly when its constraints pin every key attribute to an
// =-constant (the row key covers all attributes, so "pinned" means the
// selection is a fully constant u-tuple). Updates with free variables
// or ≠ constraints select a hyperplane that may intersect every shard
// and must fan out. Theorem 5.3 locality makes the fan-out safe: each
// row's normal form is maintained from that row's annotation and the
// query annotation alone, so disjoint row partitions can apply the same
// hyperplane query independently.

// fnvOffset64 and fnvPrime64 are the FNV-1a 64-bit parameters.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// ShardOf maps a row key (Tuple.Key) to a shard in [0, shards) by
// FNV-1a hash.
func ShardOf(key string, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnvOffset64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	return int(h % uint64(shards))
}

// ShardOfTuple maps a tuple to a shard in [0, shards) by folding its
// Fingerprint. It is the allocation-free routing twin of ShardOf: the
// sharded engine partitions rows by fingerprint, so routing never
// materializes Key() strings. The partition differs from ShardOf's, but
// engine output is independent of row placement (global sequence-order
// merge), so any consistent partition yields byte-identical results.
func ShardOfTuple(t Tuple, shards int) int {
	return ShardOfFingerprint(t.Fingerprint(), shards)
}

// ShardOfFingerprint maps an already-computed tuple fingerprint to its
// shard — callers that cached Fingerprint() route without rehashing.
func ShardOfFingerprint(fp uint64, shards int) int {
	if shards <= 1 {
		return 0
	}
	return int((fp ^ fp>>32) % uint64(shards))
}

// PinnedTuple reports whether the pattern pins every attribute to an
// =-constant, and if so returns the single tuple it can match. Variable
// terms — even ones restricted by disequalities — leave the pattern
// unpinned.
func (p Pattern) PinnedTuple() (Tuple, bool) {
	t := make(Tuple, len(p))
	for i, term := range p {
		if !term.isConst {
			return nil, false
		}
		t[i] = term.value
	}
	return t, true
}

// RouteKeys returns the row keys of every row the update can touch,
// when constraint analysis pins them: an insertion touches exactly the
// inserted row; a pinned deletion the selected tuple; a pinned
// modification the selected tuple and its target. ok=false means the
// selection leaves attributes free and the update must be evaluated
// against every shard.
func (u Update) RouteKeys() (keys []string, ok bool) {
	tuples, ok := u.RouteTuples()
	if !ok {
		return nil, false
	}
	keys = make([]string, len(tuples))
	for i, t := range tuples {
		keys[i] = t.Key()
	}
	return keys, true
}

// RouteTuples is the tuple-valued form of RouteKeys: the rows the update
// can touch, when constraint analysis pins them, without building key
// strings. The sharded engine routes by fingerprinting these tuples.
func (u Update) RouteTuples() (tuples []Tuple, ok bool) {
	switch u.Kind {
	case OpInsert:
		return []Tuple{u.Row}, true
	case OpDelete:
		t, pinned := u.Sel.PinnedTuple()
		if !pinned {
			return nil, false
		}
		return []Tuple{t}, true
	case OpModify:
		t, pinned := u.Sel.PinnedTuple()
		if !pinned {
			return nil, false
		}
		return []Tuple{t, u.Target(t)}, true
	default:
		return nil, false
	}
}
