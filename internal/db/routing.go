package db

// Shard routing analysis for hyperplane updates. A hash-sharded engine
// partitions rows by Tuple.Key; an update can be routed to a single
// shard exactly when its constraints pin every key attribute to an
// =-constant (the row key covers all attributes, so "pinned" means the
// selection is a fully constant u-tuple). Updates with free variables
// or ≠ constraints select a hyperplane that may intersect every shard
// and must fan out. Theorem 5.3 locality makes the fan-out safe: each
// row's normal form is maintained from that row's annotation and the
// query annotation alone, so disjoint row partitions can apply the same
// hyperplane query independently.

// fnvOffset64 and fnvPrime64 are the FNV-1a 64-bit parameters.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// ShardOf maps a row key (Tuple.Key) to a shard in [0, shards) by
// FNV-1a hash.
func ShardOf(key string, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnvOffset64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	return int(h % uint64(shards))
}

// PinnedTuple reports whether the pattern pins every attribute to an
// =-constant, and if so returns the single tuple it can match. Variable
// terms — even ones restricted by disequalities — leave the pattern
// unpinned.
func (p Pattern) PinnedTuple() (Tuple, bool) {
	t := make(Tuple, len(p))
	for i, term := range p {
		if !term.isConst {
			return nil, false
		}
		t[i] = term.value
	}
	return t, true
}

// RouteKeys returns the row keys of every row the update can touch,
// when constraint analysis pins them: an insertion touches exactly the
// inserted row; a pinned deletion the selected tuple; a pinned
// modification the selected tuple and its target. ok=false means the
// selection leaves attributes free and the update must be evaluated
// against every shard.
func (u Update) RouteKeys() (keys []string, ok bool) {
	switch u.Kind {
	case OpInsert:
		return []string{u.Row.Key()}, true
	case OpDelete:
		t, pinned := u.Sel.PinnedTuple()
		if !pinned {
			return nil, false
		}
		return []string{t.Key()}, true
	case OpModify:
		t, pinned := u.Sel.PinnedTuple()
		if !pinned {
			return nil, false
		}
		return []string{t.Key(), u.Target(t).Key()}, true
	default:
		return nil, false
	}
}
