package db

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// WriteCSV writes the instance as CSV: a header of "name:kind" columns
// followed by one row per tuple in deterministic (key) order.
func WriteCSV(w io.Writer, in *Instance) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(in.rel.Attrs))
	for i, a := range in.rel.Attrs {
		header[i] = a.Name + ":" + a.Kind.String()
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, t := range in.Tuples() {
		rec := make([]string, len(t))
		for i, v := range t {
			rec[i] = v.String()
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSVSchema parses the header produced by WriteCSV into a relation
// schema with the given name, and returns the remaining reader
// positioned at the first data row.
func ReadCSVSchema(name string, header []string) (*RelationSchema, error) {
	attrs := make([]Attribute, len(header))
	for i, h := range header {
		colon := strings.LastIndexByte(h, ':')
		if colon < 0 {
			return nil, fmt.Errorf("db: CSV header column %q lacks a :kind suffix", h)
		}
		kind, err := ParseKind(h[colon+1:])
		if err != nil {
			return nil, err
		}
		attrs[i] = Attribute{Name: h[:colon], Kind: kind}
	}
	return NewRelationSchema(name, attrs...)
}

// ReadCSV loads tuples in WriteCSV's format into the database, creating
// the relation from the header. The database must have been created over
// a schema containing a relation with this name and matching attributes;
// LoadCSVRelation builds both in one step for callers without a schema.
func ReadCSV(d *Database, rel string, r io.Reader) (int, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return 0, fmt.Errorf("db: reading CSV header: %w", err)
	}
	rs, err := ReadCSVSchema(rel, header)
	if err != nil {
		return 0, err
	}
	want := d.Schema().Relation(rel)
	if want == nil {
		return 0, fmt.Errorf("db: unknown relation %s", rel)
	}
	if len(want.Attrs) != len(rs.Attrs) {
		return 0, fmt.Errorf("db: CSV for %s has %d columns, schema needs %d", rel, len(rs.Attrs), len(want.Attrs))
	}
	n := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		t := make(Tuple, len(rec))
		for i, field := range rec {
			v, err := ParseValue(want.Attrs[i].Kind, field)
			if err != nil {
				return n, fmt.Errorf("db: row %d of %s: %w", n+1, rel, err)
			}
			t[i] = v
		}
		if err := d.InsertTuple(rel, t); err != nil {
			return n, err
		}
		n++
	}
}

// LoadCSVRelation reads a CSV stream into a fresh single-relation
// database, deriving the schema from the header.
func LoadCSVRelation(rel string, r io.Reader) (*Database, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("db: reading CSV header: %w", err)
	}
	rs, err := ReadCSVSchema(rel, header)
	if err != nil {
		return nil, err
	}
	schema, err := NewSchema(rs)
	if err != nil {
		return nil, err
	}
	d := NewDatabase(schema)
	n := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return d, nil
		}
		if err != nil {
			return nil, err
		}
		t := make(Tuple, len(rec))
		for i, field := range rec {
			v, err := ParseValue(rs.Attrs[i].Kind, field)
			if err != nil {
				return nil, fmt.Errorf("db: row %d of %s: %w", n+1, rel, err)
			}
			t[i] = v
		}
		if err := d.InsertTuple(rel, t); err != nil {
			return nil, err
		}
		n++
	}
}
