package db

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// String interning. Every distinct string payload is stored once in a
// global, sharded, append-only table and referred to by a dense uint32
// id, so a Value carries one machine word instead of a string header and
// two string Values compare with a single integer comparison. Ids are
// process-local: they never reach snapshots or the WAL (the codecs write
// payloads via Str()), so restart or replication re-interning is
// invisible on disk.
//
// Layout: id = localIndex<<strShardBits | shard. Each shard owns a
// payload->id map guarded by an RWMutex (interning is off the read hot
// path) and an id->payload slice published through an atomic pointer in
// the copy-on-grow style of the engine's row lists, so Str() is a
// lock-free two-load lookup. Id 0 is reserved for "" in shard 0, which
// keeps the zero Value equal to S("").

const (
	strShardBits  = 4
	strShardCount = 1 << strShardBits
	strShardMask  = strShardCount - 1
)

type strShard struct {
	mu  sync.Mutex
	ids map[string]uint32
	// strs is the published id->payload table for this shard. Writers
	// copy, append and re-publish under mu; readers only load.
	strs atomic.Pointer[[]string]
}

var strShards = func() *[strShardCount]strShard {
	var tab [strShardCount]strShard
	for i := range tab {
		tab[i].ids = make(map[string]uint32)
		s := make([]string, 0, 16)
		if i == 0 {
			s = append(s, "") // id 0
		}
		tab[i].strs.Store(&s)
	}
	tab[0].ids[""] = 0
	return &tab
}()

// internStrCount counts distinct interned strings (for stats).
var internStrCount atomic.Int64

// strShardFor hashes the payload (FNV-1a) and folds to a shard index.
func strShardFor(s string) uint64 {
	h := fnvOffset64
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return (h ^ h>>32) & strShardMask
}

// internString returns the id of s, assigning one on first sight.
func internString(s string) uint32 {
	if s == "" {
		return 0
	}
	shard := strShardFor(s)
	sh := &strShards[shard]
	sh.mu.Lock()
	id, ok := sh.ids[s]
	if !ok {
		old := *sh.strs.Load()
		local := uint64(len(old))
		if local >= 1<<(32-strShardBits) {
			sh.mu.Unlock()
			panic("db: string intern table overflow")
		}
		id = uint32(local)<<strShardBits | uint32(shard)
		// Re-publish a grown copy rather than appending in place: a
		// published header is never mutated, so concurrent Str() calls
		// index a stable array.
		grown := make([]string, len(old)+1, cap2(len(old)+1))
		copy(grown, old)
		grown[len(old)] = s
		sh.strs.Store(&grown)
		sh.ids[s] = id
		internStrCount.Add(1)
	}
	sh.mu.Unlock()
	return id
}

func cap2(n int) int {
	c := 16
	for c < n {
		c <<= 1
	}
	return c
}

// lookupString resolves an interned id back to its payload. Lock-free.
func lookupString(id uint32) string {
	strs := *strShards[id&strShardMask].strs.Load()
	idx := id >> strShardBits
	if uint64(idx) >= uint64(len(strs)) {
		panic(fmt.Sprintf("db: unknown string id %d", id))
	}
	return strs[idx]
}

// StringInternStats reports the size of the global string intern table.
type StringInternStats struct {
	Strings int64 `json:"strings"` // distinct payloads interned (excluding the reserved "")
}

// InternedStrings returns counters for the global string table.
func InternedStrings() StringInternStats {
	return StringInternStats{Strings: internStrCount.Load()}
}
