package db

import "fmt"

// AttrCond is a selection condition comparing two attributes of the
// same tuple — the kind of condition the hyperplane fragment explicitly
// excludes ("hyperplane queries cannot capture comparison between
// values inside the same tuple", Section 2 of the paper). It is the
// building block of the beyond-the-paper conjunctive extension sketched
// in the paper's conclusion.
type AttrCond struct {
	// Left and Right are attribute positions.
	Left, Right int
	// Neq selects tuples whose attributes differ instead of agree.
	Neq bool
}

// Holds reports whether the tuple satisfies the condition.
func (c AttrCond) Holds(t Tuple) bool {
	eq := t[c.Left] == t[c.Right]
	if c.Neq {
		return !eq
	}
	return eq
}

// String renders "#i = #j" or "#i != #j".
func (c AttrCond) String() string {
	op := "="
	if c.Neq {
		op = "!="
	}
	return fmt.Sprintf("#%d %s #%d", c.Left, op, c.Right)
}

// validate checks the positions against a relation schema.
func (c AttrCond) validate(r *RelationSchema) error {
	if c.Left < 0 || c.Left >= r.Arity() || c.Right < 0 || c.Right >= r.Arity() {
		return fmt.Errorf("db: attribute condition %v out of range for %s", c, r.Name)
	}
	if r.Attrs[c.Left].Kind != r.Attrs[c.Right].Kind {
		return fmt.Errorf("db: attribute condition %v compares kinds %v and %v",
			c, r.Attrs[c.Left].Kind, r.Attrs[c.Right].Kind)
	}
	return nil
}

// WithConds returns a copy of the update whose selection additionally
// requires every attribute condition — leaving the hyperplane fragment.
//
// Provenance tracking through the engines continues to work (the
// Section 3.1 construction never inspects why a tuple matched), and the
// semantic applications remain exact: the all-true valuation still
// reproduces set semantics and deletion propagation still coincides
// with re-execution, both verified by tests. What is lost is the
// paper's headline guarantee: with conditions outside the Karabeg–Vianu
// fragment there is no known sound and complete axiomatization of set
// equivalence, so set-equivalent transactions are no longer guaranteed
// to yield UP[X]-equivalent provenance (the paper's Section 8 leaves
// this fragment as future work for exactly that reason).
func (u Update) WithConds(conds ...AttrCond) Update {
	u.Conds = append(append([]AttrCond(nil), u.Conds...), conds...)
	return u
}

// MatchesTuple reports whether the update's selection — pattern plus
// attribute conditions — applies to the tuple.
func (u Update) MatchesTuple(t Tuple) bool {
	if !u.Sel.Matches(t) {
		return false
	}
	for _, c := range u.Conds {
		if !c.Holds(t) {
			return false
		}
	}
	return true
}

// IsHyperplane reports whether the update stays inside the hyperplane
// fragment (no attribute conditions).
func (u Update) IsHyperplane() bool { return len(u.Conds) == 0 }
