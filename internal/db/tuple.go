package db

import (
	"fmt"
	"strings"
)

// Tuple is an ordered list of attribute values conforming to a relation
// schema. Tuples are immutable by convention: updates produce new tuples.
type Tuple []Value

// NewTuple is a convenience constructor.
func NewTuple(vals ...Value) Tuple { return Tuple(vals) }

// Key returns an unambiguous string encoding of the tuple, used as the
// hash-map key for set semantics and annotation lookup.
func (t Tuple) Key() string {
	var b strings.Builder
	for i, v := range t {
		if i > 0 {
			b.WriteByte('|')
		}
		v.appendKey(&b)
	}
	return b.String()
}

// Fingerprint returns a 64-bit FNV-1a hash of the tuple's kind tags and
// payload words. It identifies the tuple for shard routing and row-map
// lookup without building the Key() string, so the apply/read hot path
// stays allocation-free; probe sites disambiguate hash collisions with
// Equal. Fingerprints hash interned string ids, so they are process-
// local and must never be persisted — Key() remains the durable
// encoding.
func (t Tuple) Fingerprint() uint64 {
	h := fnvOffset64
	for _, v := range t {
		h ^= uint64(v.kind)
		h *= fnvPrime64
		b := v.bits
		for i := 0; i < 8; i++ {
			h ^= b & 0xff
			h *= fnvPrime64
			b >>= 8
		}
	}
	return h
}

// Equal reports value equality of two tuples.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if t[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// String renders "(v1, v2, ...)".
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Conforms checks the tuple against a relation schema (arity and kinds).
func (t Tuple) Conforms(r *RelationSchema) error {
	if len(t) != len(r.Attrs) {
		return fmt.Errorf("db: tuple %v has arity %d, relation %s needs %d", t, len(t), r.Name, len(r.Attrs))
	}
	for i, v := range t {
		if v.Kind() != r.Attrs[i].Kind {
			return fmt.Errorf("db: tuple %v attribute %s has kind %v, want %v", t, r.Attrs[i].Name, v.Kind(), r.Attrs[i].Kind)
		}
	}
	return nil
}
