package db

import (
	"fmt"
	"strings"
)

// UpdateKind enumerates the three hyperplane update queries.
type UpdateKind uint8

const (
	// OpInsert is a single-tuple insertion R+(u):- (u all constants).
	OpInsert UpdateKind = iota
	// OpDelete deletes every tuple satisfying a hyperplane pattern,
	// R−(u):-.
	OpDelete
	// OpModify is RM(u1, u2):- — every tuple satisfying u1 is deleted
	// and re-inserted with some attributes set to constants.
	OpModify
)

// String names the update kind.
func (k UpdateKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpModify:
		return "modify"
	default:
		return fmt.Sprintf("UpdateKind(%d)", uint8(k))
	}
}

// SetClause describes one position of a modification's u2: either keep
// the attribute (Set == false) or overwrite it with the constant Val.
type SetClause struct {
	Set bool
	Val Value
}

// Keep is the SetClause that leaves an attribute unchanged.
func Keep() SetClause { return SetClause{} }

// SetTo is the SetClause overwriting an attribute with a constant.
func SetTo(v Value) SetClause { return SetClause{Set: true, Val: v} }

// Update is one hyperplane update query against a named relation.
type Update struct {
	Kind UpdateKind
	Rel  string
	// Row is the inserted tuple (OpInsert).
	Row Tuple
	// Sel is the selection pattern u1 (OpDelete, OpModify).
	Sel Pattern
	// Set is the per-attribute assignment derived from u2 (OpModify).
	Set []SetClause
	// Conds are optional inter-attribute conditions (the conjunctive
	// extension beyond the hyperplane fragment; see WithConds).
	Conds []AttrCond
}

// Insert builds an insertion query.
func Insert(rel string, row Tuple) Update {
	return Update{Kind: OpInsert, Rel: rel, Row: row}
}

// Delete builds a deletion query.
func Delete(rel string, sel Pattern) Update {
	return Update{Kind: OpDelete, Rel: rel, Sel: sel}
}

// Modify builds a modification query.
func Modify(rel string, sel Pattern, set []SetClause) Update {
	return Update{Kind: OpModify, Rel: rel, Sel: sel, Set: set}
}

// Target computes the tuple that t is modified into (the instantiation
// of u2 for the instantiation t of u1).
func (u Update) Target(t Tuple) Tuple {
	out := t.Clone()
	for i, c := range u.Set {
		if c.Set {
			out[i] = c.Val
		}
	}
	return out
}

// IsIdentityOn reports whether the modification maps t to itself.
func (u Update) IsIdentityOn(t Tuple) bool {
	for i, c := range u.Set {
		if c.Set && t[i] != c.Val {
			return false
		}
	}
	return true
}

// Validate checks the update against the schema and the hyperplane
// fragment.
func (u Update) Validate(s *Schema) error {
	r := s.Relation(u.Rel)
	if r == nil {
		return fmt.Errorf("db: unknown relation %s", u.Rel)
	}
	for _, c := range u.Conds {
		if u.Kind == OpInsert {
			return fmt.Errorf("db: insertion cannot carry attribute conditions")
		}
		if err := c.validate(r); err != nil {
			return err
		}
	}
	switch u.Kind {
	case OpInsert:
		return u.Row.Conforms(r)
	case OpDelete:
		return u.Sel.Validate(r)
	case OpModify:
		if err := u.Sel.Validate(r); err != nil {
			return err
		}
		if len(u.Set) != r.Arity() {
			return fmt.Errorf("db: modify on %s has %d set clauses, want %d", u.Rel, len(u.Set), r.Arity())
		}
		for i, c := range u.Set {
			if c.Set && c.Val.Kind() != r.Attrs[i].Kind {
				return fmt.Errorf("db: modify on %s sets attribute %s to kind %v, want %v",
					u.Rel, r.Attrs[i].Name, c.Val.Kind(), r.Attrs[i].Kind)
			}
		}
		return nil
	default:
		return fmt.Errorf("db: unknown update kind %v", u.Kind)
	}
}

// String renders the update in the paper's datalog-like notation.
func (u Update) String() string {
	switch u.Kind {
	case OpInsert:
		return fmt.Sprintf("%s+%s:-", u.Rel, u.Row)
	case OpDelete:
		return fmt.Sprintf("%s-%s:-", u.Rel, u.Sel)
	case OpModify:
		var b strings.Builder
		fmt.Fprintf(&b, "%sM(%s -> (", u.Rel, u.Sel)
		for i, c := range u.Set {
			if i > 0 {
				b.WriteString(", ")
			}
			if c.Set {
				b.WriteString(c.Val.String())
			} else {
				b.WriteString(u.Sel[i].String())
			}
		}
		b.WriteString(")):-")
		return b.String()
	default:
		return "?"
	}
}

// Transaction is a sequence of update queries applied atomically in
// order. In the provenance model the whole transaction carries a single
// annotation named by Label.
type Transaction struct {
	// Label is the transaction's provenance annotation name (the paper's
	// p ∈ P).
	Label string
	// Updates are applied in order, each to the result of its
	// predecessors.
	Updates []Update
}

// Validate checks every update against the schema.
func (t *Transaction) Validate(s *Schema) error {
	for i := range t.Updates {
		if err := t.Updates[i].Validate(s); err != nil {
			return fmt.Errorf("transaction %s, query %d: %w", t.Label, i, err)
		}
	}
	return nil
}

// NumQueries reports the number of update queries in the transaction.
func (t *Transaction) NumQueries() int { return len(t.Updates) }

// CountQueries sums the number of update queries across transactions;
// the paper's x-axes ("number of updates") count individual queries.
func CountQueries(txns []Transaction) int {
	n := 0
	for i := range txns {
		n += len(txns[i].Updates)
	}
	return n
}
