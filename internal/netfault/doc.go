// Package netfault is internal/iofault's sibling for the network: an
// in-process TCP proxy that sits between a client and a server and
// injects the failure modes real networks produce — partitions
// (existing connections blackhole, new ones are refused), added
// latency with jitter, bandwidth caps, mid-stream connection resets,
// and connection flaps. Where iofault proved that every disk failure
// yields a typed error or clean degradation, netfault proves the same
// for the wire: the chaos battery runs the leader/follower replication
// stream and /v1/subscribe clients through a proxy while a fault
// schedule fires, then asserts the follower and subscribers reconverge
// to state byte-identical to the leader.
//
// The proxy is deliberately simple: one goroutine pair per connection,
// per-chunk delay and throttle (an approximation of per-packet
// shaping that is entirely adequate for convergence testing), and a
// deterministic jitter source so a failing schedule replays exactly.
package netfault
