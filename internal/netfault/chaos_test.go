// Package netfault_test is the network-chaos battery: it runs the real
// leader server, the real follower, and real subscription clients
// through the fault-injecting proxy and asserts the only acceptable
// outcome — after every fault schedule heals, replicas and subscribers
// reconverge to state byte-identical to the leader's, with the
// resilience counters (stalls, reconnects, breaker trips) showing the
// machinery actually fired.
package netfault_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"hyperprov/internal/db"
	"hyperprov/internal/engine"
	"hyperprov/internal/netfault"
	"hyperprov/internal/provstore"
	"hyperprov/internal/server"
	"hyperprov/internal/subscribe"
	"hyperprov/internal/wal"
	"hyperprov/internal/workload"
)

// chaosRig is one leader behind a fault proxy: a persistent store, the
// production HTTP server in front of it, and a netfault.Proxy that
// followers and subscribers dial instead of the server.
type chaosRig struct {
	t         *testing.T
	leader    *wal.Store
	srv       *server.Server
	proxy     *netfault.Proxy
	directURL string // the server's own URL, bypassing the proxy
	txns      []db.Transaction
	next      int // txns[:next] are applied
}

func newChaosRig(t *testing.T) *chaosRig {
	t.Helper()
	initial, txns, err := workload.GeneratePinned(workload.Config{
		Tuples: 150, Pool: 20, Group: 3, Updates: 90,
		QueriesPerTxn: 2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := wal.Open(t.TempDir(),
		wal.WithInitialDatabase(initial),
		wal.WithSync(wal.SyncNever),
		wal.WithSegmentSize(4096),
		wal.WithHeartbeatEvery(20*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(st, server.WithLogf(t.Logf))
	ts := httptest.NewServer(srv.Handler())
	p, err := netfault.New(strings.TrimPrefix(ts.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		p.Close()
		srv.DrainStreams()
		ts.Close()
		srv.Close()
		st.Close()
	})
	return &chaosRig{t: t, leader: st, srv: srv, proxy: p, directURL: ts.URL, txns: txns}
}

// apply commits the next n transactions on the leader (all remaining
// if n < 0).
func (c *chaosRig) apply(n int) {
	c.t.Helper()
	end := c.next + n
	if n < 0 || end > len(c.txns) {
		end = len(c.txns)
	}
	for ; c.next < end; c.next++ {
		if err := c.leader.ApplyTransaction(&c.txns[c.next]); err != nil {
			c.t.Fatalf("ApplyTransaction %d: %v", c.next, err)
		}
	}
}

// follower opens a replica dialing the leader through the proxy, tuned
// aggressively so fault detection and redial cycles fit a test run:
// short stall timeout, fast jittered redial, a real breaker.
func (c *chaosRig) follower() *wal.Follower {
	c.t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	f, err := wal.OpenFollower(ctx, c.t.TempDir(), wal.HTTPSource(c.proxy.URL(), nil),
		wal.WithSync(wal.SyncNever),
		wal.WithSegmentSize(4096),
		wal.WithStreamStallTimeout(300*time.Millisecond),
		wal.WithRedialBackoff(5*time.Millisecond, 50*time.Millisecond),
		wal.WithReconnectBudget(8, 100*time.Millisecond),
	)
	if err != nil {
		c.t.Fatalf("OpenFollower: %v", err)
	}
	c.t.Cleanup(func() { f.Close() })
	return f
}

func snapshotBytes(t *testing.T, e engine.DB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := provstore.SaveSnapshot(&buf, e); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// converge heals the link, waits for the follower to reach the
// leader's LSN, and asserts byte-identical snapshots — the battery's
// single acceptance criterion.
func (c *chaosRig) converge(f *wal.Follower) {
	c.t.Helper()
	c.proxy.Heal()
	target := c.leader.Stats().LSN
	deadline := time.Now().Add(30 * time.Second)
	for f.ReplicaStats().AppliedLSN < target {
		if time.Now().After(deadline) {
			rs := f.ReplicaStats()
			c.t.Fatalf("follower stuck at LSN %d waiting for %d (stalls=%d reconnects=%d breaker=%+v lastError=%q)",
				rs.AppliedLSN, target, rs.Stalls, rs.Reconnects, rs.Breaker, rs.LastError)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !f.Ready() {
		c.t.Fatal("caught-up follower is not ready")
	}
	want, got := snapshotBytes(c.t, c.leader), snapshotBytes(c.t, f)
	if !bytes.Equal(want, got) {
		c.t.Fatalf("follower snapshot diverged after faults: %d vs %d bytes", len(want), len(got))
	}
}

// TestNetChaosPartitionHeal: the link blackholes mid-stream (silence,
// no FIN) while the leader keeps committing. The follower's stall
// timeout must detect the dead stream, redial through the refused
// phase, and converge after the heal.
func TestNetChaosPartitionHeal(t *testing.T) {
	c := newChaosRig(t)
	c.apply(20)
	f := c.follower()
	c.converge(f)

	c.proxy.Partition()
	c.apply(30) // committed into the void
	// Hold the partition until the follower has both detected the dead
	// stream and had a redial refused — only then does the heal make
	// the recovery meaningful.
	deadline := time.Now().Add(15 * time.Second)
	for f.ReplicaStats().Stalls == 0 || c.proxy.StatsSnapshot().Refused == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("follower never churned against the partition: %+v, proxy %+v",
				f.ReplicaStats(), c.proxy.StatsSnapshot())
		}
		time.Sleep(5 * time.Millisecond)
	}
	c.apply(-1)
	c.converge(f)

	rs := f.ReplicaStats()
	if rs.Stalls == 0 || rs.Reconnects == 0 {
		t.Fatalf("partition left no trace: stalls=%d reconnects=%d", rs.Stalls, rs.Reconnects)
	}
	if c.proxy.StatsSnapshot().Refused == 0 {
		t.Fatal("no redial was refused during the partition — the proxy never saw the churn")
	}
}

// TestNetChaosLatencyJitter: a slow, jittery link (15ms ± 10ms per
// chunk) must delay convergence, never corrupt it.
func TestNetChaosLatencyJitter(t *testing.T) {
	c := newChaosRig(t)
	c.proxy.SetLatency(15*time.Millisecond, 10*time.Millisecond)
	c.apply(20)
	f := c.follower()
	c.apply(-1)
	c.converge(f)
}

// TestNetChaosBandwidthCrawl: the checkpoint bootstrap squeezed
// through a 256 KiB/s straw still produces identical bytes.
func TestNetChaosBandwidthCrawl(t *testing.T) {
	c := newChaosRig(t)
	c.proxy.SetBandwidth(256 << 10)
	c.apply(40)
	f := c.follower()
	c.apply(-1)
	c.converge(f)
}

// TestNetChaosConnectionFlaps: repeated abortive resets between apply
// bursts — the reconnect-storm shape. Full-jitter backoff plus the
// resumable stream must absorb every flap.
func TestNetChaosConnectionFlaps(t *testing.T) {
	c := newChaosRig(t)
	c.apply(10)
	f := c.follower()
	c.converge(f)
	for i := 0; i < 5; i++ {
		c.apply(10)
		c.proxy.ResetAll()
		time.Sleep(30 * time.Millisecond)
	}
	c.apply(-1)
	c.converge(f)

	rs := f.ReplicaStats()
	if rs.Reconnects == 0 {
		t.Fatalf("flap schedule produced no reconnects: %+v", rs)
	}
	if c.proxy.StatsSnapshot().Resets == 0 {
		t.Fatal("proxy reset counter never moved")
	}
}

// TestNetChaosMidStreamReset: a single RST lands while the checkpoint
// bootstrap is crawling through a throttled link — the worst moment,
// half a snapshot on the wire. The follower must redial and re-enter
// bootstrap cleanly.
func TestNetChaosMidStreamReset(t *testing.T) {
	c := newChaosRig(t)
	c.apply(40)
	c.proxy.SetBandwidth(512 << 10) // stretch the bootstrap window
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Fire resets while the bootstrap is in flight.
		for i := 0; i < 3; i++ {
			time.Sleep(25 * time.Millisecond)
			c.proxy.ResetAll()
		}
		c.proxy.SetBandwidth(0)
	}()
	f := c.follower()
	<-done
	c.apply(-1)
	c.converge(f)
}

// subFrame mirrors subscribe.Frame for the client side of the wire.
type subFrame struct {
	Type    string          `json:"type"`
	Rows    []subscribe.Row `json:"rows"`
	Added   []subscribe.Row `json:"added"`
	Removed []subscribe.Row `json:"removed"`
	Changed []subscribe.Row `json:"changed"`
}

// subClient is a reconnecting SSE subscriber: it mirrors the watch
// subscription into a local map, replacing it on ack/resync frames and
// editing it on deltas, and redials with a short sleep whenever the
// stream breaks.
type subClient struct {
	mu         sync.Mutex
	state      map[string]string
	reconnects int
}

func rowKey(r subscribe.Row) string { return fmt.Sprint(r.Tuple) }

func (sc *subClient) applyFrame(f subFrame) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	switch f.Type {
	case "ack", "resync":
		sc.state = make(map[string]string, len(f.Rows))
		for _, r := range f.Rows {
			sc.state[rowKey(r)] = r.Annotation
		}
	case "delta":
		for _, r := range f.Added {
			sc.state[rowKey(r)] = r.Annotation
		}
		for _, r := range f.Changed {
			sc.state[rowKey(r)] = r.Annotation
		}
		for _, r := range f.Removed {
			delete(sc.state, rowKey(r))
		}
	}
}

func (sc *subClient) snapshot() map[string]string {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	out := make(map[string]string, len(sc.state))
	for k, v := range sc.state {
		out[k] = v
	}
	return out
}

// run dials and re-dials the SSE stream until ctx ends.
func (sc *subClient) run(ctx context.Context, subURL string) {
	client := &http.Client{}
	first := true
	for ctx.Err() == nil {
		if !first {
			sc.mu.Lock()
			sc.reconnects++
			sc.mu.Unlock()
			select {
			case <-ctx.Done():
				return
			case <-time.After(20 * time.Millisecond):
			}
		}
		first = false
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, subURL, nil)
		if err != nil {
			return
		}
		resp, err := client.Do(req)
		if err != nil {
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			continue
		}
		scanner := bufio.NewScanner(resp.Body)
		scanner.Buffer(make([]byte, 64<<10), 8<<20)
		for scanner.Scan() {
			line := scanner.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var f subFrame
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &f); err != nil {
				continue
			}
			sc.applyFrame(f)
		}
		resp.Body.Close()
	}
}

// leaderAck fetches a fresh ack straight from the server (no proxy) —
// the oracle state a recovered subscriber must match.
func leaderAck(t *testing.T, directURL string) map[string]string {
	t.Helper()
	resp, err := http.Get(directURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 64<<10), 8<<20)
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var f subFrame
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &f); err != nil {
			t.Fatal(err)
		}
		if f.Type != "ack" {
			continue
		}
		state := make(map[string]string, len(f.Rows))
		for _, r := range f.Rows {
			state[rowKey(r)] = r.Annotation
		}
		return state
	}
	t.Fatal("no ack frame on the direct stream")
	return nil
}

// TestNetChaosSubscriberReconverges: a live SSE subscriber rides
// through a partition and a flap burst while the leader keeps
// committing. After the heal, the client's mirrored state must equal a
// fresh ack taken directly from the leader — deltas, resyncs and
// reconnect acks composing to the same rows.
func TestNetChaosSubscriberReconverges(t *testing.T) {
	c := newChaosRig(t)
	c.apply(10)

	spec := url.QueryEscape(`{"id":"w","kind":"watch","rel":"R","match":[null,null,null,null,null]}`)
	proxied := c.proxy.URL() + "/v1/subscribe?spec=" + spec

	sc := &subClient{state: map[string]string{}}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go sc.run(ctx, proxied)

	// Let the first ack land, then run the fault schedule under load.
	time.Sleep(100 * time.Millisecond)
	c.apply(20)
	c.proxy.Partition()
	c.apply(20)
	time.Sleep(150 * time.Millisecond)
	c.proxy.Heal()
	c.apply(20)
	for i := 0; i < 3; i++ {
		c.proxy.ResetAll()
		c.apply(5)
		time.Sleep(30 * time.Millisecond)
	}
	c.apply(-1)

	// The reconnecting client must converge to the leader's rows.
	leaderURL := c.directURL + "/v1/subscribe?spec=" + spec
	want := leaderAck(t, leaderURL)
	deadline := time.Now().Add(20 * time.Second)
	for {
		if got := sc.snapshot(); reflect.DeepEqual(got, want) {
			break
		}
		if time.Now().After(deadline) {
			got := sc.snapshot()
			t.Fatalf("subscriber state never reconverged: client %d rows, leader %d rows", len(got), len(want))
		}
		time.Sleep(10 * time.Millisecond)
	}
	sc.mu.Lock()
	reconnects := sc.reconnects
	sc.mu.Unlock()
	if reconnects == 0 {
		t.Fatal("fault schedule produced no subscriber reconnects")
	}
}
