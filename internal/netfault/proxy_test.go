package netfault

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

// echoServer accepts connections and echoes lines back.
func echoServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				sc := bufio.NewScanner(c)
				for sc.Scan() {
					fmt.Fprintf(c, "%s\n", sc.Text())
				}
			}()
		}
	}()
	return ln.Addr().String()
}

func newTestProxy(t *testing.T, target string) *Proxy {
	t.Helper()
	p, err := New(target)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func roundTrip(t *testing.T, conn net.Conn, msg string) (string, error) {
	t.Helper()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := fmt.Fprintf(conn, "%s\n", msg); err != nil {
		return "", err
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	return strings.TrimSpace(line), err
}

// TestProxyForwards: the healthy proxy is transparent.
func TestProxyForwards(t *testing.T) {
	p := newTestProxy(t, echoServer(t))
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	got, err := roundTrip(t, conn, "hello")
	if err != nil || got != "hello" {
		t.Fatalf("round trip: %q, %v", got, err)
	}
	st := p.StatsSnapshot()
	if st.Accepted != 1 || st.Bytes == 0 {
		t.Fatalf("stats %+v, want 1 accepted and bytes > 0", st)
	}
}

// TestProxyLatency: configured delay shows up in the round trip.
func TestProxyLatency(t *testing.T) {
	p := newTestProxy(t, echoServer(t))
	p.SetLatency(60*time.Millisecond, 0)
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	if _, err := roundTrip(t, conn, "ping"); err != nil {
		t.Fatal(err)
	}
	// Request and reply each cross the proxy once: ≥ 2×60ms.
	if el := time.Since(start); el < 120*time.Millisecond {
		t.Fatalf("round trip took %v, want ≥ 120ms with 60ms per-direction latency", el)
	}
}

// TestProxyPartition: live connections blackhole (no FIN, just
// silence), new connections are refused, and Heal restores both.
func TestProxyPartition(t *testing.T) {
	p := newTestProxy(t, echoServer(t))
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := roundTrip(t, conn, "before"); err != nil {
		t.Fatal(err)
	}
	p.Partition()
	// The live connection stalls rather than erroring.
	conn.SetDeadline(time.Now().Add(150 * time.Millisecond))
	fmt.Fprintf(conn, "lost\n")
	if _, err := bufio.NewReader(conn).ReadString('\n'); err == nil {
		t.Fatal("read succeeded through a partition")
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("partitioned read failed with %v, want a timeout (silence, not a close)", err)
	}
	// New connections fail fast (accepted then reset).
	c2, err := net.Dial("tcp", p.Addr())
	if err == nil {
		c2.SetDeadline(time.Now().Add(2 * time.Second))
		if _, rerr := bufio.NewReader(c2).ReadString('\n'); rerr == nil {
			t.Fatal("new connection served through a partition")
		}
		c2.Close()
	}
	if got := p.StatsSnapshot().Refused; got == 0 {
		t.Fatalf("refused counter %d, want > 0", got)
	}
	p.Heal()
	// The blackholed write was held, not dropped: after heal the echo
	// arrives and the connection keeps working.
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil || strings.TrimSpace(line) != "lost" {
		t.Fatalf("post-heal read: %q, %v (want the held line)", line, err)
	}
}

// TestProxyResetAll: a mid-stream reset errors the client promptly.
func TestProxyResetAll(t *testing.T) {
	p := newTestProxy(t, echoServer(t))
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := roundTrip(t, conn, "up"); err != nil {
		t.Fatal(err)
	}
	p.ResetAll()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	fmt.Fprintf(conn, "after\n")
	if _, err := bufio.NewReader(conn).ReadString('\n'); err == nil {
		t.Fatal("read succeeded after ResetAll")
	}
	if got := p.StatsSnapshot().Resets; got == 0 {
		t.Fatalf("resets counter %d, want > 0", got)
	}
	// The proxy still serves fresh connections.
	c2, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if got, err := roundTrip(t, c2, "fresh"); err != nil || got != "fresh" {
		t.Fatalf("post-reset round trip: %q, %v", got, err)
	}
}

// TestProxyBandwidth: a tight cap stretches a bulk transfer.
func TestProxyBandwidth(t *testing.T) {
	p := newTestProxy(t, echoServer(t))
	p.SetBandwidth(64 << 10) // 64 KiB/s
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	payload := strings.Repeat("x", 32<<10) // 32 KiB each way
	start := time.Now()
	if got, err := roundTrip(t, conn, payload); err != nil || got != payload {
		t.Fatalf("bulk round trip failed: %v (got %d bytes)", err, len(got))
	}
	// 64 KiB total at 64 KiB/s ≈ 1s; allow generous slack downward.
	if el := time.Since(start); el < 500*time.Millisecond {
		t.Fatalf("bulk transfer took %v, want ≥ 500ms under the cap", el)
	}
}
