package netfault

import (
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Proxy is a fault-injecting TCP forwarder. Clients connect to Addr()
// instead of the real server; every connection is piped to the target
// through the currently configured fault schedule. All knobs are safe
// to flip while connections are live.
type Proxy struct {
	target string
	ln     net.Listener

	mu          sync.Mutex
	conns       map[*proxyConn]struct{}
	latency     time.Duration
	jitter      time.Duration
	bytesPerSec int64
	partitioned bool
	closed      bool
	rng         *rand.Rand

	wg sync.WaitGroup

	accepted atomic.Uint64
	refused  atomic.Uint64
	resets   atomic.Uint64
	forwards atomic.Uint64 // bytes forwarded, both directions
}

// Stats is a counter snapshot.
type Stats struct {
	Accepted uint64 // connections accepted and piped
	Refused  uint64 // connections refused while partitioned
	Resets   uint64 // connections killed by ResetAll
	Active   int    // connections currently piped
	Bytes    uint64 // payload bytes forwarded
}

// New starts a proxy on a loopback port forwarding to target
// (host:port). Faults are all off initially. Close releases the port
// and every live connection.
func New(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		target: target,
		ln:     ln,
		conns:  make(map[*proxyConn]struct{}),
		rng:    rand.New(rand.NewSource(1)), // deterministic jitter
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the proxy's dialable address (host:port).
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// URL is the proxy's address as an http base URL.
func (p *Proxy) URL() string { return "http://" + p.Addr() }

// SetLatency delays every forwarded chunk by base plus a uniform draw
// in [0, jitter). Zero/zero turns delay off.
func (p *Proxy) SetLatency(base, jitter time.Duration) {
	p.mu.Lock()
	p.latency, p.jitter = base, jitter
	p.mu.Unlock()
}

// SetBandwidth throttles each connection direction to roughly
// bytesPerSec. Zero removes the cap.
func (p *Proxy) SetBandwidth(bytesPerSec int64) {
	p.mu.Lock()
	p.bytesPerSec = bytesPerSec
	p.mu.Unlock()
}

// Partition blackholes the link: live connections stop forwarding in
// both directions (they stay open — neither side sees a FIN or RST,
// only silence) and new connections are refused with a reset. Heal
// restores forwarding on the survivors.
func (p *Proxy) Partition() {
	p.mu.Lock()
	p.partitioned = true
	p.mu.Unlock()
}

// Heal ends a partition.
func (p *Proxy) Heal() {
	p.mu.Lock()
	p.partitioned = false
	p.mu.Unlock()
}

// Partitioned reports whether the link is currently blackholed.
func (p *Proxy) Partitioned() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.partitioned
}

// ResetAll kills every live connection with an abortive close (RST
// where the platform allows it) — the mid-stream reset fault. New
// connections keep working; callers loop ResetAll for flap schedules.
func (p *Proxy) ResetAll() {
	for _, c := range p.snapshot() {
		p.resets.Add(1)
		c.close(true)
	}
}

// DropAll closes every live connection cleanly (FIN), simulating an
// idle-timeout or load-balancer drain.
func (p *Proxy) DropAll() {
	for _, c := range p.snapshot() {
		c.close(false)
	}
}

// StatsSnapshot reports the proxy's counters.
func (p *Proxy) StatsSnapshot() Stats {
	p.mu.Lock()
	active := len(p.conns)
	p.mu.Unlock()
	return Stats{
		Accepted: p.accepted.Load(),
		Refused:  p.refused.Load(),
		Resets:   p.resets.Load(),
		Active:   active,
		Bytes:    p.forwards.Load(),
	}
}

// Close stops accepting, kills every connection and waits for the
// pipe goroutines to finish.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.ln.Close()
	for _, c := range p.snapshot() {
		c.close(false)
	}
	p.wg.Wait()
}

func (p *Proxy) snapshot() []*proxyConn {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*proxyConn, 0, len(p.conns))
	for c := range p.conns {
		out = append(out, c)
	}
	return out
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		refuse := p.partitioned || p.closed
		p.mu.Unlock()
		if refuse {
			p.refused.Add(1)
			abortiveClose(conn)
			continue
		}
		p.wg.Add(1)
		go p.handle(conn)
	}
}

func (p *Proxy) handle(client net.Conn) {
	defer p.wg.Done()
	upstream, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		client.Close()
		return
	}
	c := &proxyConn{client: client, upstream: upstream, done: make(chan struct{})}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		client.Close()
		upstream.Close()
		return
	}
	p.conns[c] = struct{}{}
	p.accepted.Add(1)
	p.mu.Unlock()

	// Either direction ending (error, EOF, reset) closes the pair,
	// which unblocks the other direction's Read.
	var pipes sync.WaitGroup
	pipes.Add(2)
	go func() { defer pipes.Done(); defer c.close(false); p.pipe(c, client, upstream) }()
	go func() { defer pipes.Done(); defer c.close(false); p.pipe(c, upstream, client) }()
	pipes.Wait()
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// pipe copies src→dst chunk by chunk through the fault schedule: it
// stalls (without closing) while the link is partitioned, sleeps the
// configured latency+jitter per chunk, and throttles to the bandwidth
// cap. Any error on either side ends the pipe; handle then closes the
// whole connection.
func (p *Proxy) pipe(c *proxyConn, src, dst net.Conn) {
	buf := make([]byte, 8<<10)
	for {
		if !p.waitHealthy(c) {
			return
		}
		n, err := src.Read(buf)
		if n > 0 {
			// Data read just before a partition fires is held, not
			// delivered: blackhole semantics for in-flight bytes too.
			if !p.waitHealthy(c) {
				return
			}
			if !p.sleep(c, p.chunkDelay(n)) {
				return
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
			p.forwards.Add(uint64(n))
		}
		if err != nil {
			return
		}
	}
}

// waitHealthy blocks while the link is partitioned; false means the
// connection closed underneath.
func (p *Proxy) waitHealthy(c *proxyConn) bool {
	for {
		p.mu.Lock()
		part := p.partitioned
		p.mu.Unlock()
		if !part {
			select {
			case <-c.done:
				return false
			default:
				return true
			}
		}
		select {
		case <-c.done:
			return false
		case <-time.After(2 * time.Millisecond):
		}
	}
}

func (p *Proxy) chunkDelay(n int) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	d := p.latency
	if p.jitter > 0 {
		d += time.Duration(p.rng.Int63n(int64(p.jitter)))
	}
	if p.bytesPerSec > 0 {
		d += time.Duration(float64(n) / float64(p.bytesPerSec) * float64(time.Second))
	}
	return d
}

func (p *Proxy) sleep(c *proxyConn, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-c.done:
		return false
	case <-timer.C:
		return true
	}
}

// proxyConn is one piped connection pair.
type proxyConn struct {
	client   net.Conn
	upstream net.Conn
	once     sync.Once
	done     chan struct{}
}

// close tears the pair down; abortive sends RST instead of FIN where
// possible.
func (c *proxyConn) close(abortive bool) {
	c.once.Do(func() {
		close(c.done)
		if abortive {
			abortiveClose(c.client)
			abortiveClose(c.upstream)
			return
		}
		c.client.Close()
		c.upstream.Close()
	})
}

// abortiveClose closes conn with SO_LINGER 0 so the peer sees a
// connection reset, not an orderly shutdown.
func abortiveClose(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	_ = conn.Close()
}
